//! Property-based tests for the SRAM cache models.

use memsim_cache::{Cache, CacheConfig, Hierarchy, Policy};
use memsim_types::Addr;
use proptest::prelude::*;

fn policies() -> impl Strategy<Value = Policy> {
    prop_oneof![Just(Policy::Lru), Just(Policy::Srrip), Just(Policy::Drrip)]
}

fn accesses() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..(1 << 20), prop::bool::ANY), 1..500)
}

proptest! {
    #[test]
    fn access_after_fill_always_hits(policy in policies(), addr in 0u64..(1 << 20)) {
        let mut c = Cache::new(CacheConfig::new(4096, 4, 64, policy));
        c.access(Addr(addr), false);
        prop_assert!(c.access(Addr(addr), false).hit, "immediate re-access must hit");
    }

    #[test]
    fn stats_are_consistent(policy in policies(), accs in accesses()) {
        let mut c = Cache::new(CacheConfig::new(4096, 4, 64, policy));
        let mut fills = 0u64;
        for (a, w) in &accs {
            let r = c.access(Addr(*a), *w);
            if r.filled.is_some() {
                fills += 1;
                // Fill addresses are line-aligned and cover the request.
                let f = r.filled.expect("just checked");
                prop_assert_eq!(f.0 % 64, 0);
                prop_assert_eq!(f.0 / 64, *a / 64);
            }
            // Writebacks only on misses.
            if r.hit {
                prop_assert!(r.writeback.is_none());
            }
        }
        prop_assert_eq!(c.stats().accesses, accs.len() as u64);
        prop_assert_eq!(c.stats().misses, fills);
        prop_assert!(c.stats().writebacks <= c.stats().misses);
    }

    #[test]
    fn probe_agrees_with_access(policy in policies(), accs in accesses()) {
        let mut c = Cache::new(CacheConfig::new(8192, 8, 64, policy));
        for (a, w) in &accs {
            c.access(Addr(*a), *w);
            prop_assert!(c.probe(Addr(*a)), "line just accessed must be present");
        }
    }

    #[test]
    fn working_set_within_capacity_converges_to_all_hits(policy in policies()) {
        // 16 lines in a 64-line cache: after one warm pass, everything hits.
        let mut c = Cache::new(CacheConfig::new(4096, 4, 64, policy));
        for i in 0..16u64 {
            c.access(Addr(i * 64), false);
        }
        for round in 0..3 {
            for i in 0..16u64 {
                let r = c.access(Addr(i * 64), false);
                if round > 0 {
                    prop_assert!(r.hit, "round {round} line {i}");
                }
            }
        }
    }

    #[test]
    fn hierarchy_outcome_is_consistent(accs in accesses()) {
        let mut h = Hierarchy::table1_scaled(64);
        for (a, w) in &accs {
            let out = h.access(Addr(*a), *w, 1);
            // Fill only on LLC miss; level/fill agreement.
            prop_assert_eq!(out.fill.is_some(), out.is_llc_miss());
            if let Some(f) = out.fill {
                prop_assert_eq!(f.0 / 64, *a / 64, "fill covers the access");
            }
        }
        prop_assert_eq!(h.instructions(), accs.len() as u64);
        let (l1, l2, l3) = h.stats();
        // Every L2 access stems from an L1 event, every L3 from L2.
        prop_assert!(l2.accesses <= l1.misses + l1.writebacks + l2.writebacks + l3.accesses);
        prop_assert!(l3.misses <= l3.accesses);
    }
}
