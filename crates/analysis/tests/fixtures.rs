//! Fixture corpus: one clean and one doctored file per rule.
//!
//! Each doctored fixture marks its violating line with a trailing `//~`
//! comment; the test asserts the auditor reports exactly that rule on
//! exactly that line, and that the clean twin produces no findings at all.
//! Fixtures live under `tests/fixtures/` — a directory the workspace
//! sweep deliberately skips — so they document each rule without ever
//! tripping the real audit gate.

use memsim_analysis::check_source;

/// The repo-relative path a fixture is audited *as*, per rule: hot/struct
/// rules need specific path classes (crate roots, docs-required crates),
/// det rules a plain simulation-crate path.
fn rel_for(rule: &str) -> &'static str {
    match rule {
        "struct-attrs" => "crates/demo/src/lib.rs",
        "struct-pub-docs" => "crates/core/src/fixture.rs",
        _ => "crates/sim/src/fixture.rs",
    }
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Line number (1-based) of the `//~` marker, if the fixture has one.
fn marker_line(src: &str) -> Option<u32> {
    src.lines()
        .position(|l| l.contains("//~"))
        .map(|i| (i + 1) as u32)
}

const RULES: &[&str] = &[
    "det-hashmap",
    "det-clock",
    "det-entropy",
    "det-unordered-iter",
    "det-thread",
    "hot-panic",
    "hot-alloc",
    "hot-callee",
    "struct-attrs",
    "struct-pub-docs",
    "audit-syntax",
];

#[test]
fn clean_fixtures_produce_no_findings() {
    for rule in RULES {
        let src = fixture(&format!("{rule}.clean.rs"));
        let (findings, _) = check_source(rel_for(rule), &src);
        assert!(
            findings.is_empty(),
            "{rule}.clean.rs should be clean, got: {findings:?}"
        );
    }
}

#[test]
fn doctored_fixtures_trip_their_rule_at_the_marked_line() {
    for rule in RULES {
        let src = fixture(&format!("{rule}.doctored.rs"));
        let (findings, _) = check_source(rel_for(rule), &src);
        assert!(!findings.is_empty(), "{rule}.doctored.rs produced no findings");
        assert!(
            findings.iter().all(|f| f.rule == *rule),
            "{rule}.doctored.rs tripped other rules too: {findings:?}"
        );
        // struct-attrs reports against line 1 of the crate root; every
        // other doctored fixture marks its violating line with `//~`.
        let expected = marker_line(&src).unwrap_or(1);
        assert!(
            findings.iter().any(|f| f.line == expected),
            "{rule}.doctored.rs: expected a finding on line {expected}, got {findings:?}"
        );
    }
}

#[test]
fn audited_exception_grammar_round_trips() {
    // The audit-syntax clean fixture uses a real allow directive: the
    // suppressed rule must surface as an audited exception, not a finding.
    let src = fixture("audit-syntax.clean.rs");
    let (findings, st) = check_source(rel_for("audit-syntax"), &src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(st.allows.len(), 1);
    assert_eq!(st.allows[0].rule, "det-hashmap");
    assert!(st.allows[0].reason.contains("iteration order"));
}
