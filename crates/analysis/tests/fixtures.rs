//! Fixture corpus: one clean and one doctored file per rule.
//!
//! Each doctored fixture marks its violating line with a trailing `//~`
//! comment; the test asserts the auditor reports exactly that rule on
//! exactly that line, and that the clean twin produces no findings at all.
//! Fixtures live under `tests/fixtures/` — a directory the workspace
//! sweep deliberately skips — so they document each rule without ever
//! tripping the real audit gate.

use memsim_analysis::check::check_ws;
use memsim_analysis::check_source;
use memsim_analysis::graph::Workspace;
use std::collections::BTreeSet;

/// The repo-relative path a fixture is audited *as*, per rule: hot/struct
/// rules need specific path classes (crate roots, docs-required crates),
/// det rules a plain simulation-crate path.
fn rel_for(rule: &str) -> &'static str {
    match rule {
        "struct-attrs" => "crates/demo/src/lib.rs",
        "struct-pub-docs" => "crates/core/src/fixture.rs",
        "obs-counter-reconcile" => "crates/obs/src/fixture.rs",
        _ => "crates/sim/src/fixture.rs",
    }
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Line number (1-based) of the `//~` marker, if the fixture has one.
fn marker_line(src: &str) -> Option<u32> {
    src.lines()
        .position(|l| l.contains("//~"))
        .map(|i| (i + 1) as u32)
}

const RULES: &[&str] = &[
    "det-hashmap",
    "det-clock",
    "det-entropy",
    "det-unordered-iter",
    "det-thread",
    "hot-panic",
    "hot-alloc",
    "hot-callee",
    "hot-transitive",
    "merge-commutative",
    "unit-mismatch",
    "obs-counter-reconcile",
    "struct-attrs",
    "struct-pub-docs",
    "audit-syntax",
];

#[test]
fn clean_fixtures_produce_no_findings() {
    for rule in RULES {
        let src = fixture(&format!("{rule}.clean.rs"));
        let (findings, _) = check_source(rel_for(rule), &src);
        assert!(
            findings.is_empty(),
            "{rule}.clean.rs should be clean, got: {findings:?}"
        );
    }
}

#[test]
fn doctored_fixtures_trip_their_rule_at_the_marked_line() {
    for rule in RULES {
        let src = fixture(&format!("{rule}.doctored.rs"));
        let (findings, _) = check_source(rel_for(rule), &src);
        assert!(!findings.is_empty(), "{rule}.doctored.rs produced no findings");
        assert!(
            findings.iter().all(|f| f.rule == *rule),
            "{rule}.doctored.rs tripped other rules too: {findings:?}"
        );
        // struct-attrs reports against line 1 of the crate root; every
        // other doctored fixture marks its violating line with `//~`.
        let expected = marker_line(&src).unwrap_or(1);
        assert!(
            findings.iter().any(|f| f.line == expected),
            "{rule}.doctored.rs: expected a finding on line {expected}, got {findings:?}"
        );
    }
}

/// Loads the multi-file call-graph corpus (`clean` or `doctored`) as a
/// workspace of sim-crate files, returning it with each file's `//~`
/// marker line (if any) keyed by repo-relative path.
fn graph_corpus(kind: &str) -> (Workspace, Vec<(String, u32)>) {
    let names = ["iface.rs", "ctrl.rs", "tuner.rs"];
    let mut sources = Vec::new();
    let mut markers = Vec::new();
    for name in names {
        let src = fixture(&format!("graph/{kind}/{name}"));
        let rel = format!("crates/sim/src/{name}");
        if let Some(line) = marker_line(&src) {
            markers.push((rel.clone(), line));
        }
        sources.push((rel, src));
    }
    (Workspace::from_sources(sources), markers)
}

#[test]
fn graph_corpus_clean_resolves_cross_file_and_cycles_quietly() {
    let (ws, markers) = graph_corpus("clean");
    assert!(markers.is_empty(), "clean corpus must not carry markers");
    let report = check_ws(&ws, &BTreeSet::new());
    assert!(report.clean(), "clean graph corpus flagged: {:?}", report.findings);
    // The corpus resolves cross-file free calls, a trait fan-out, and a
    // cross-file cycle — the walk must see real edges, not an empty graph.
    assert!(report.call_edges >= 5, "suspiciously few edges: {}", report.call_edges);
    assert_eq!(report.hot_fns, 5);
}

#[test]
fn graph_corpus_doctored_flags_exactly_the_cross_file_escapes() {
    let (ws, markers) = graph_corpus("doctored");
    let report = check_ws(&ws, &BTreeSet::new());
    assert!(
        report.findings.iter().all(|f| f.rule == "hot-transitive"),
        "doctored graph corpus tripped other rules: {:?}",
        report.findings
    );
    let got: BTreeSet<(String, u32)> =
        report.findings.iter().map(|f| (f.path.clone(), f.line)).collect();
    let want: BTreeSet<(String, u32)> = markers.into_iter().collect();
    assert_eq!(want.len(), 2, "corpus should mark one escape per file");
    assert_eq!(got, want, "findings must match the `//~` markers exactly");
    // `drift` is pulled onto the hot path only by the tuner file; the
    // report must name that cross-file route.
    let drift = report.findings.iter().find(|f| f.msg.contains("`drift`")).expect("drift finding");
    assert!(
        drift.msg.contains("crates/sim/src/tuner.rs"),
        "expected the via-file in: {}",
        drift.msg
    );
}

#[test]
fn audited_exception_grammar_round_trips() {
    // The audit-syntax clean fixture uses a real allow directive: the
    // suppressed rule must surface as an audited exception, not a finding.
    let src = fixture("audit-syntax.clean.rs");
    let (findings, st) = check_source(rel_for("audit-syntax"), &src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(st.allows.len(), 1);
    assert_eq!(st.allows[0].rule, "det-hashmap");
    assert!(st.allows[0].reason.contains("iteration order"));
}
