//! End-to-end tests of the `audit_tool` binary: the shared exit-code
//! contract (0 clean / 1 findings / 2 usage — see
//! [`memsim_analysis::exitcode`]), the stability of `list-rules`, the
//! JSON report format, and the baseline ratchet.

use memsim_analysis::{json, rules};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn audit_tool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_audit_tool"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawning audit_tool")
}

fn fixture(name: &str) -> String {
    format!("tests/fixtures/{name}")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn exit_codes_follow_the_shared_convention() {
    // 0: the check ran and found nothing.
    let clean = audit_tool(&["check", &fixture("hot-panic.clean.rs")]);
    assert_eq!(clean.status.code(), Some(0), "clean fixture: {clean:?}");

    // 1: the check ran and found real problems.
    let dirty = audit_tool(&["check", &fixture("hot-panic.doctored.rs")]);
    assert_eq!(dirty.status.code(), Some(1), "doctored fixture: {dirty:?}");
    assert!(
        String::from_utf8_lossy(&dirty.stdout).contains("hot-panic"),
        "findings go to stdout"
    );

    // 2: the check never ran — bad flag, unknown rule, unreadable input.
    assert_eq!(audit_tool(&["check", "--bogus"]).status.code(), Some(2));
    assert_eq!(audit_tool(&["explain", "no-such-rule"]).status.code(), Some(2));
    assert_eq!(audit_tool(&["check", "no/such/file.rs"]).status.code(), Some(2));
    assert_eq!(audit_tool(&[]).status.code(), Some(2));
}

#[test]
fn list_rules_is_sorted_stable_and_complete() {
    let out = audit_tool(&["list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    let ids: Vec<&str> =
        text.lines().map(|l| l.split_whitespace().next().unwrap()).collect();
    assert_eq!(ids.len(), rules::RULES.len(), "one line per catalog rule");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "list-rules must be sorted by id");
    for r in rules::RULES {
        assert!(ids.contains(&r.id), "missing rule `{}`", r.id);
    }
    // Stable: byte-identical across runs.
    assert_eq!(audit_tool(&["list-rules"]).stdout, text.as_bytes());
}

#[test]
fn every_listed_rule_explains_successfully() {
    for r in rules::RULES {
        let out = audit_tool(&["explain", r.id]);
        assert_eq!(out.status.code(), Some(0), "explain {}", r.id);
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.starts_with(r.id), "explain {} header", r.id);
        assert!(text.len() > 100, "explain {} should tell the long story", r.id);
    }
}

#[test]
fn json_report_is_parseable_and_versioned() {
    let out = audit_tool(&["check", "--format", "json", &fixture("merge-commutative.doctored.rs")]);
    assert_eq!(out.status.code(), Some(1));
    let doc = json::parse(&String::from_utf8(out.stdout).unwrap()).expect("valid JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(doc.get("files").and_then(|v| v.as_u64()), Some(1));
    let findings = doc.get("findings").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("rule").and_then(|v| v.as_str()),
        Some("merge-commutative")
    );
    assert!(findings[0].get("line").and_then(|v| v.as_u64()).is_some());
}

#[test]
fn baseline_ratchet_tolerates_known_debt_and_rejects_drift() {
    // hot-panic applies under any path (unlike the crate-scoped unit
    // rules, which ignore a `tests/fixtures/...` rel).
    let doctored = fixture("hot-panic.doctored.rs");
    let clean = fixture("hot-panic.clean.rs");

    // Capture today's debt as the baseline.
    let snap = audit_tool(&["check", "--format", "json", &doctored]);
    assert_eq!(snap.status.code(), Some(1));
    let baseline = tmp("cli_baseline.json");
    std::fs::write(&baseline, &snap.stdout).unwrap();
    let bl = baseline.to_str().unwrap();

    // Same findings + baseline → tolerated, exit 0.
    let ok = audit_tool(&["check", "--baseline", bl, &doctored]);
    assert_eq!(ok.status.code(), Some(0), "baselined debt must pass: {ok:?}");

    // A clean tree against that baseline → stale entries, exit 1: fixed
    // debt must be deleted so the ratchet only moves down.
    let stale = audit_tool(&["check", "--baseline", bl, &clean]);
    assert_eq!(stale.status.code(), Some(1), "stale baseline must fail: {stale:?}");
    assert!(String::from_utf8_lossy(&stale.stderr).contains("stale"));

    // New findings not in an empty baseline → exit 1.
    let empty = tmp("cli_baseline_empty.json");
    std::fs::write(&empty, "{\"findings\": []}\n").unwrap();
    let new = audit_tool(&["check", "--baseline", empty.to_str().unwrap(), &doctored]);
    assert_eq!(new.status.code(), Some(1), "new findings must fail: {new:?}");

    // Unreadable or malformed baseline → usage error, exit 2.
    let missing = audit_tool(&["check", "--baseline", "no/such/baseline.json", &doctored]);
    assert_eq!(missing.status.code(), Some(2));
    let garbled = tmp("cli_baseline_garbled.json");
    std::fs::write(&garbled, "not json").unwrap();
    let bad = audit_tool(&["check", "--baseline", garbled.to_str().unwrap(), &doctored]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn committed_baseline_matches_the_workspace() {
    // The committed ratchet file must stay in sync with the tree: running
    // the audit against it from the repo root must pass. (This is the same
    // gate scripts/verify.sh enforces.)
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_audit_tool"))
        .args(["check", "--baseline", "results/audit_baseline.json"])
        .current_dir(&root)
        .output()
        .expect("spawning audit_tool");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace audit vs committed baseline failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
