//! Clean: the hot path propagates absence instead of panicking.

/// Resolves a slot, handing absence to the caller.
// audit: hot-path
pub fn resolve(slots: &[u16], i: usize) -> Option<u16> {
    slots.get(i).copied()
}
