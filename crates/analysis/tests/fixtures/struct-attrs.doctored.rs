//! A crate root missing both guard attributes.

/// Some public item.
pub fn f() {}
