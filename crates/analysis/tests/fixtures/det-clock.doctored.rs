//! Doctored: a wall-clock read feeding simulated state.

/// Returns a "timestamp" that differs on every run.
pub fn stamp() -> u128 {
    std::time::Instant::now().elapsed().as_nanos() //~ det-clock
}
