//! Clean: every pub counter the observability struct exposes is tied
//! down by the reconciliation invariant, so a counter that silently
//! stops being incremented fails a check instead of shipping zeros.

/// Relay traffic counters (fixture).
pub struct RelayCounters {
    /// Frames relayed downstream.
    pub relayed: u64,
    /// Frames dropped at admission.
    pub dropped: u64,
}

impl RelayCounters {
    /// Invariant: every admitted frame is either relayed or dropped.
    pub fn reconcile(&self, admitted: u64) -> bool {
        self.relayed + self.dropped == admitted
    }
}
