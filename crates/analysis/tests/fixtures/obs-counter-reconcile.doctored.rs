//! Doctored: `dropped` is exported but appears in no reconciliation
//! invariant and no test — nothing would notice if the increment were
//! deleted, which is how observability counters rot.

/// Relay traffic counters (fixture).
pub struct RelayCounters {
    /// Frames relayed downstream.
    pub relayed: u64,
    /// Frames dropped at admission.
    pub dropped: u64, //~ obs-counter-reconcile
}

impl RelayCounters {
    /// Only `relayed` is tied down.
    pub fn reconcile(&self, admitted: u64) -> bool {
        self.relayed == admitted
    }
}
