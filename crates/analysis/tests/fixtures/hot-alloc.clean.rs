//! Clean: a caller-owned scratch buffer is reused across calls, so the
//! steady-state access path never allocates.

/// Appends the set's free frames into `scratch` (cleared first).
// audit: hot-path
pub fn free_frames(occupancy: &[bool], scratch: &mut Vec<u16>) {
    scratch.clear();
    for (f, &occ) in occupancy.iter().enumerate() {
        if !occ {
            scratch.push(f as u16);
        }
    }
}
