//! Doctored: an allow directive with no reason — unauditable, so the
//! directive itself becomes the finding (and suppresses nothing).

/// Picks an arbitrary element.
pub fn any_key(xs: &[u64]) -> Option<u64> {
    xs.first().copied() // audit: allow(det-hashmap) //~ audit-syntax
}
