//! Doctored: the hot entry point calls an unannotated same-file helper,
//! so nothing audits the helper's body — including a `self.` method whose
//! ubiquitous std name (`push`) would be skip-listed on any other
//! receiver.

/// Frame index → HBM device address.
fn frame_addr(frame: u64) -> u64 {
    frame << 16
}

/// Hot entry point (the controller access flow).
// audit: hot-path
pub fn access(frame: u64) -> u64 {
    frame_addr(frame) //~ hot-callee
}

/// Per-access seal step of the batched flow; never audited.
fn seal(frame: u64) -> u64 {
    frame | 1
}

/// Batched entry point: annotated, but the per-access helper it loops
/// over is not, so the chunk body escapes the closure.
// audit: hot-path
pub fn access_batch(frames: &[u64], out: &mut Vec<u64>) {
    for &frame in frames {
        out.push(seal(frame)); //~ hot-callee
    }
}

/// A sampler ring whose method names shadow std collections.
pub struct Ring {
    head: usize,
}

impl Ring {
    /// Evict-oldest append; on the access flow but not annotated.
    pub fn push(&mut self, v: usize) {
        self.head = v;
    }

    /// Hot record path: `self.push` resolves to this file's impl, so the
    /// skip list must not hide it from the closure.
    // audit: hot-path
    pub fn record(&mut self, v: usize) {
        self.push(v); //~ hot-callee
    }
}
