//! Doctored: the hot entry point calls an unannotated same-file helper,
//! so nothing audits the helper's body.

/// Frame index → HBM device address.
fn frame_addr(frame: u64) -> u64 {
    frame << 16
}

/// Hot entry point (the controller access flow).
// audit: hot-path
pub fn access(frame: u64) -> u64 {
    frame_addr(frame) //~ hot-callee
}
