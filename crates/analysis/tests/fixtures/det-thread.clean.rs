//! Clean: parallel work is expressed as experiment cells and handed to
//! the engine, whose slot-indexed merge keeps scheduling out of the
//! output bytes.

/// Describes one unit of parallel work for the engine to schedule.
pub struct Cell {
    /// Deterministic seed of the cell.
    pub seed: u64,
}

/// Builds the cell list; the engine (crates/sim/src/engine.rs) owns the
/// threads.
pub fn cells(n: u64) -> Vec<Cell> {
    (0..n).map(|seed| Cell { seed }).collect()
}
