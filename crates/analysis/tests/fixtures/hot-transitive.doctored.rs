//! Doctored: the controller entry point is a hot root by name and owner,
//! but nothing marks it `// audit: hot-path`, so the whole access flow
//! sits outside the audited closure and the workspace pass flags the
//! root itself.

/// Demo controller (fixture).
pub struct DemoController {
    hits: u64,
}

impl DemoController {
    /// The per-access entry point — a hot root of the call graph.
    pub fn access(&mut self, addr: u64) -> u64 { //~ hot-transitive
        self.hits += addr & 1;
        self.hits
    }
}
