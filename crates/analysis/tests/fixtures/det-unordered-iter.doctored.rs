//! Doctored: iterating a hash map leaks hash order downstream — even a
//! deterministic hasher yields an order that is fragile under insertions.
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// Deterministic hasher: exempt from det-hashmap, not from iteration order.
pub type Det = BuildHasherDefault<std::collections::hash_map::DefaultHasher>;

/// Sums all keys — in whatever order the buckets yield them.
pub fn key_sum(m: &HashMap<u64, u64, Det>) -> u64 {
    m.keys().sum() //~ det-unordered-iter
}
