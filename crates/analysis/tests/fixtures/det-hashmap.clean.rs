//! Clean: an ordered map gives deterministic iteration for free.
use std::collections::BTreeMap;

/// Counts occurrences of each value.
pub fn histogram(xs: &[u64]) -> BTreeMap<u64, u32> {
    let mut h = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}
