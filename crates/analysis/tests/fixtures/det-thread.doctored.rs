//! Doctored: an ad-hoc worker thread outside the engine/shard modules.
//! Whatever it computes reaches the results in completion order — a
//! determinism hazard the merge-disciplined modules exist to prevent.

/// Computes a partial result on a thread the engine knows nothing about.
pub fn sneaky_parallelism(work: Vec<u64>) -> u64 {
    let handle = std::thread::spawn(move || work.iter().sum()); //~ det-thread
    handle.join().unwrap_or(0)
}
