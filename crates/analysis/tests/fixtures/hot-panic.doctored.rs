//! Doctored: a panic reachable from the controller access flow.

/// Resolves a slot, panicking when out of range.
// audit: hot-path
pub fn resolve(slots: &[u16], i: usize) -> u16 {
    *slots.get(i).unwrap() //~ hot-panic
}
