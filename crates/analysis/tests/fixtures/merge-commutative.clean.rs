//! Clean: a shard-merge fold built only from commutative operations —
//! `+=` sums, `|=` unions, and self-referential `max` folds — so any
//! absorption order produces the same bytes.

/// Per-shard partial of a relay histogram.
pub struct Partial {
    /// Accesses folded in.
    pub count: u64,
    /// Saturating high-water mark.
    pub peak: u64,
    /// Union of touched ways.
    pub ways: u64,
}

impl Partial {
    /// Folds `other` into `self`; commutative and associative.
    // audit: merge
    pub fn absorb(&mut self, other: &Partial) {
        self.count += other.count;
        self.peak = self.peak.max(other.peak);
        self.ways |= other.ways;
    }
}
