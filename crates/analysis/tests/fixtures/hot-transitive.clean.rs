//! Clean: the controller entry point is a hot root (it is named `access`
//! and its impl owner contains `Controller`), it is annotated, and every
//! fn reachable from it is annotated too.

/// Demo controller (fixture).
pub struct DemoController {
    hits: u64,
}

impl DemoController {
    /// The per-access entry point — a hot root of the call graph.
    // audit: hot-path
    pub fn access(&mut self, addr: u64) -> u64 {
        self.bump(addr);
        self.hits
    }

    /// Reachable from the root, annotated into the closure.
    // audit: hot-path
    fn bump(&mut self, addr: u64) {
        self.hits += addr & 1;
    }
}
