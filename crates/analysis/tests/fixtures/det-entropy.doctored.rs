//! Doctored: ambient process entropy seeds simulated behaviour.

/// Picks a "random" start offset — different on every run.
pub fn start_offset(len: u64) -> u64 {
    let r: u64 = thread_rng().gen(); //~ det-entropy
    r % len
}
