//! Clean: simulated time derives from the engine's access counter.

/// Returns the simulated timestamp of an access index.
pub fn stamp(access_index: u64) -> u64 {
    access_index * 4
}
