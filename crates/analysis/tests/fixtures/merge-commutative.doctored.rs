//! Doctored: the merge overwrites a self field with last-writer-wins `=`,
//! so the folded result depends on which shard's partial arrives last —
//! exactly the order-dependence the any-width byte-identity contract
//! forbids.

/// Per-shard partial of a relay histogram.
pub struct Partial {
    /// Accesses folded in.
    pub count: u64,
    /// Timestamp of the last access the shard saw.
    pub last: u64,
}

impl Partial {
    /// Folds `other` into `self`.
    // audit: merge
    pub fn absorb(&mut self, other: &Partial) {
        self.count += other.count;
        self.last = other.last; //~ merge-commutative
    }
}
