//! Doctored: the sum adds a cycle count to a byte count. Both names are
//! annotated into different domains, so the workspace unit table flags
//! the `+` as dimensionally meaningless.

/// Channel probe counters.
pub struct Probe {
    /// Cycles the bus spent busy.
    pub busy: u64, // audit: unit(cycles)
    /// Payload bytes moved.
    pub moved: u64, // audit: unit(bytes)
}

impl Probe {
    /// Nonsense aggregate crossing the cycle/byte domains.
    pub fn skew(&self) -> u64 {
        self.busy + self.moved //~ unit-mismatch
    }
}
