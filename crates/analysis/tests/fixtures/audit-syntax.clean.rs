//! Clean: a well-formed audited exception — rule id, `--` separator and a
//! reason the report can carry.

/// Counts distinct values; hash order is never observed.
pub fn distinct(xs: &[u64]) -> usize {
    let mut h = std::collections::HashMap::new(); // audit: allow(det-hashmap) -- fixture: only the count survives, iteration order unobservable
    for &x in xs {
        h.insert(x, ());
    }
    h.len()
}
