//! Clean: every public item in a documented crate carries doc comments.

/// The answer to a well-documented question.
pub const ANSWER: u32 = 42;

/// Doubles the answer.
pub fn double(x: u32) -> u32 {
    x * 2
}
