//! Clean: ordered container, iteration follows key order.
use std::collections::BTreeMap;

/// Sums all keys.
pub fn key_sum(m: &BTreeMap<u64, u64>) -> u64 {
    m.keys().sum()
}
