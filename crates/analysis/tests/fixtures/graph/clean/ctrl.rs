//! Graph corpus, controller file: the hot root calls a free fn defined
//! in another file (`tune`) and fans out through a `dyn Backend`
//! receiver; the tuner calls back into `spin` below, closing a
//! cross-file cycle.

/// Relay controller (fixture) — `access` is a hot root.
pub struct RelayController {
    backend: Box<dyn Backend>,
    hits: u64,
}

impl RelayController {
    /// Hot entry point.
    // audit: hot-path
    pub fn access(&mut self, addr: u64) -> u64 {
        self.hits += tune(addr);
        self.hits + self.backend.serve()
    }
}

/// Free helper the tuner calls back into — the cycle edge.
// audit: hot-path
pub fn spin(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        tune(v - 1)
    }
}

/// Drift correction applied by the tuner, reached only cross-file.
// audit: hot-path
pub fn drift(addr: u64) -> u64 {
    addr >> 3
}
