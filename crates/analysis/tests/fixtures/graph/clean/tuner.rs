//! Graph corpus, tuner file: a cross-file free fn on the hot path plus
//! the `Backend` impl the controller's `dyn` call fans out to.

/// Cross-file tuning step; calls back into the controller file.
// audit: hot-path
pub fn tune(addr: u64) -> u64 {
    spin(addr & 3) + drift(addr)
}

/// Backend impl the controller dispatches to.
pub struct Tuner {
    served: u64,
}

impl Backend for Tuner {
    /// On the access flow via trait fan-out, annotated.
    // audit: hot-path
    fn serve(&mut self) -> u64 {
        self.served += 1;
        self.served
    }
}
