//! Graph corpus, doctored tuner file: the `Backend` impl the controller
//! fans out to through `dyn Backend` is not annotated, and the tuner
//! pulls the controller file's unannotated `drift` onto the hot path.

/// Cross-file tuning step; calls back into the controller file.
// audit: hot-path
pub fn tune(addr: u64) -> u64 {
    spin(addr & 3) + drift(addr)
}

/// Backend impl the controller dispatches to.
pub struct Tuner {
    served: u64,
}

impl Backend for Tuner {
    /// On the access flow via trait fan-out, but never annotated.
    fn serve(&mut self) -> u64 { //~ hot-transitive
        self.served += 1;
        self.served
    }
}
