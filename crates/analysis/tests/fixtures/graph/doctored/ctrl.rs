//! Graph corpus, doctored controller file: `drift` is reached only from
//! the tuner file, so the per-file `hot-callee` rule never sees the call
//! — only the workspace call graph can flag it.

/// Relay controller (fixture) — `access` is a hot root.
pub struct RelayController {
    backend: Box<dyn Backend>,
    hits: u64,
}

impl RelayController {
    /// Hot entry point.
    // audit: hot-path
    pub fn access(&mut self, addr: u64) -> u64 {
        self.hits += tune(addr);
        self.hits + self.backend.serve()
    }
}

/// Free helper the tuner calls back into — the cycle edge.
// audit: hot-path
pub fn spin(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        tune(v - 1)
    }
}

/// Drift correction applied by the tuner; never annotated.
pub fn drift(addr: u64) -> u64 { //~ hot-transitive
    addr >> 3
}
