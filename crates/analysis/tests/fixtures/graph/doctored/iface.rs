//! Graph corpus: the backend trait, declared away from both the
//! controller and the impl so neither file defines `serve` locally.

/// A pluggable service backend.
pub trait Backend {
    /// Serves one request, returning a cost.
    fn serve(&mut self) -> u64;
}
