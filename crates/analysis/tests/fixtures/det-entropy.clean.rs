//! Clean: pseudo-randomness derives from the workload seed.

/// SplitMix64 step: deterministic for a given seed.
pub fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}
