//! Clean: everything reachable from the hot entry point is annotated,
//! keeping the hot-path closure honest — `self.` methods with ubiquitous
//! std names included, while calls to std receivers (`buf.push`) stay
//! exempt.

/// Frame index → HBM device address.
// audit: hot-path
fn frame_addr(frame: u64) -> u64 {
    frame << 16
}

/// Hot entry point (the controller access flow).
// audit: hot-path
pub fn access(frame: u64) -> u64 {
    frame_addr(frame)
}

/// Batched entry point: loops the annotated per-access flow over a
/// chunk, so the whole chunk body sits inside the audited closure.
// audit: hot-path
pub fn access_batch(frames: &[u64], out: &mut Vec<u64>) {
    for &frame in frames {
        // `out.push` is a std receiver — exempt even though `Ring`
        // below defines a same-file `push`.
        out.push(access(frame));
    }
}

/// A sampler ring whose method names shadow std collections.
pub struct Ring {
    buf: Vec<usize>,
}

impl Ring {
    /// Evict-oldest append, annotated into the closure.
    // audit: hot-path
    pub fn push(&mut self, v: usize) {
        // A std receiver keeps the skip-list exemption even though a
        // same-file fn shares the name.
        self.buf.push(v);
    }

    /// Hot record path calling the annotated `self.push`.
    // audit: hot-path
    pub fn record(&mut self, v: usize) {
        self.push(v);
    }
}
