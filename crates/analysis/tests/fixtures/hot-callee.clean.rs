//! Clean: everything reachable from the hot entry point is annotated,
//! keeping the hot-path closure honest.

/// Frame index → HBM device address.
// audit: hot-path
fn frame_addr(frame: u64) -> u64 {
    frame << 16
}

/// Hot entry point (the controller access flow).
// audit: hot-path
pub fn access(frame: u64) -> u64 {
    frame_addr(frame)
}
