//! Clean: arithmetic stays inside one annotated cycle/byte domain, and
//! the one cross-domain expression is a ratio — division is exempt
//! because bytes-per-cycle is a legitimate derived quantity.

/// Channel probe counters.
pub struct Probe {
    /// Cycles the bus spent busy.
    pub busy: u64, // audit: unit(cycles)
    /// Cycles requests spent stalled behind the bus.
    pub stall: u64, // audit: unit(cycles)
    /// Payload bytes moved.
    pub moved: u64, // audit: unit(bytes)
}

impl Probe {
    /// Total pressure on the channel, in cycles.
    pub fn pressure(&self) -> u64 {
        self.busy + self.stall
    }

    /// Achieved bandwidth — bytes per busy cycle; ratios may cross
    /// domains.
    pub fn rate(&self) -> u64 {
        self.moved / self.busy.max(1)
    }
}
