#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! A well-guarded crate root.
