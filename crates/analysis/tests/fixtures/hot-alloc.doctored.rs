//! Doctored: a fresh vector grown on every access.

/// Collects the set's free frames into a brand-new vector.
// audit: hot-path
pub fn free_frames(occupancy: &[bool]) -> Vec<u16> {
    let mut out = Vec::new();
    for (f, &occ) in occupancy.iter().enumerate() {
        if !occ {
            out.push(f as u16); //~ hot-alloc
        }
    }
    out
}
