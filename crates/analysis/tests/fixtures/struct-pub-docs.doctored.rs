//! Doctored: a bare public item in a crate whose API must be documented.

/// A documented neighbour, so the file's `//!` cannot cover for the fn.
pub const OK: u32 = 1;

pub fn double(x: u32) -> u32 { //~ struct-pub-docs
    x * 2
}
