//! Doctored: a RandomState-hashed map sneaks onto a results path.

/// Counts distinct values.
pub fn distinct(xs: &[u64]) -> usize {
    let mut h = std::collections::HashMap::new(); //~ det-hashmap
    for &x in xs {
        h.insert(x, ());
    }
    h.len()
}
