//! The workspace pass: symbol table, cross-crate call graph, and the
//! transitive hot-path closure.
//!
//! PR 5's rule engine reasoned one file at a time, which kept the
//! `// audit: hot-path` closure honest only *within* a file — a hot fn
//! calling into another crate (`Controller::access` → `DramDevice::access`
//! → `Channel::schedule`) escaped the `hot-*` rules entirely. This module
//! is the second pass that closes that hole:
//!
//! 1. **Symbol table** — every non-test `fn` in the workspace, indexed by
//!    name, by `(owner type, name)` and by `(trait, name)`, using the
//!    impl/trait attribution recovered by [`crate::items`];
//! 2. **Call graph** — call sites extracted from each fn body and resolved
//!    by shape: free calls and `crate::`/module-qualified paths resolve to
//!    free fns (same file first), `self.`/`Self::` calls to the caller's
//!    owner type, `Type::name` paths to that type, and `recv.name(…)`
//!    method calls fan out to every type (or trait impl) whose name is
//!    mentioned in the caller's file — the receiver-type heuristic that
//!    makes dyn-trait dispatch (`Box<dyn HybridMemoryController>`) land on
//!    all implementations;
//! 3. **Reachability** — a cycle-tolerant BFS from the audited roots
//!    (`Controller::access`, `access_batch`, `Channel::schedule`; see
//!    [`CallGraph::roots`]) that yields the true transitive hot-path
//!    closure the `hot-transitive` rule checks.
//!
//! Everything is deterministic: symbol tables are `BTreeMap`s, edge sets
//! are `BTreeSet`s, and the BFS visits in id order, so findings come out
//! in the same order on every run.

use crate::items::{self, FileStructure};
use crate::lexer::{lex, TokKind, Token};
use crate::rules::CALLEE_SKIP;
use std::collections::{BTreeMap, BTreeSet};

/// One lexed + analyzed source file of the workspace pass.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path (used in findings and for rule scoping).
    pub rel: String,
    /// The flat token stream, comments included.
    pub toks: Vec<Token>,
    /// Recovered item structure.
    pub st: FileStructure,
    /// Every distinct ident in the file (receiver-type heuristic input).
    pub idents: BTreeSet<String>,
}

/// The workspace: every file the audit covers, lexed and analyzed once.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Files in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds the workspace from `(repo-relative path, source)` pairs.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let files = sources
            .into_iter()
            .map(|(rel, src)| {
                let toks = lex(&src);
                let st = items::analyze(&toks);
                let idents = toks
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                SourceFile { rel, toks, st, idents }
            })
            .collect();
        Workspace { files }
    }
}

/// Identifies one fn: `(file index, index into that file's fn list)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`FileStructure::fns`].
    pub idx: usize,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallShape {
    /// `name(…)`, `crate::name(…)`, `module::name(…)` — a free fn.
    Free(String),
    /// `self.name(…)` or `Self::name(…)` — a method on the caller's type.
    OwnMethod(String),
    /// `Type::name(…)` — an explicit path through a type or trait.
    TypePath(String, String),
    /// `recv.name(…)` or `…).name(…)` — receiver of unknown type.
    Method(String),
}

/// The cross-crate call graph plus the symbol tables it was resolved with.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Resolved call edges, caller → set of callees.
    pub edges: BTreeMap<FnId, BTreeSet<FnId>>,
    /// Total resolved edges (for the audit summary line).
    pub edge_count: usize,
    free_by_name: BTreeMap<String, Vec<FnId>>,
    method_by_name: BTreeMap<String, Vec<FnId>>,
    by_owner: BTreeMap<(String, String), Vec<FnId>>,
    by_trait: BTreeMap<(String, String), Vec<FnId>>,
}

impl CallGraph {
    /// Builds the symbol table and resolves every call site.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut g = CallGraph::default();
        for (fi, file) in ws.files.iter().enumerate() {
            for (idx, f) in file.st.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id = FnId { file: fi, idx };
                match &f.owner {
                    None => g.free_by_name.entry(f.name.clone()).or_default().push(id),
                    Some(owner) => {
                        g.method_by_name.entry(f.name.clone()).or_default().push(id);
                        g.by_owner.entry((owner.clone(), f.name.clone())).or_default().push(id);
                        if let Some(tr) = &f.trait_name {
                            g.by_trait.entry((tr.clone(), f.name.clone())).or_default().push(id);
                        }
                    }
                }
            }
        }
        for (fi, file) in ws.files.iter().enumerate() {
            for (idx, f) in file.st.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let Some((start, end)) = f.body else { continue };
                let caller = FnId { file: fi, idx };
                let mut callees = BTreeSet::new();
                for shape in call_sites(&file.toks, start, end) {
                    for callee in g.resolve(ws, caller, &shape) {
                        if callee != caller {
                            callees.insert(callee);
                        }
                    }
                }
                g.edge_count += callees.len();
                if !callees.is_empty() {
                    g.edges.insert(caller, callees);
                }
            }
        }
        g
    }

    /// Resolves one call shape to candidate fns, conservatively: an
    /// unresolvable call produces no edge rather than a spurious fan-out.
    fn resolve(&self, ws: &Workspace, caller: FnId, shape: &CallShape) -> Vec<FnId> {
        let caller_file = caller.file;
        let same_file = |ids: &[FnId]| -> Vec<FnId> {
            ids.iter().copied().filter(|id| id.file == caller_file).collect()
        };
        match shape {
            CallShape::Free(name) => {
                let Some(ids) = self.free_by_name.get(name) else { return Vec::new() };
                let local = same_file(ids);
                if local.is_empty() { ids.clone() } else { local }
            }
            CallShape::OwnMethod(name) => {
                let owner = ws.files[caller.file].st.fns[caller.idx].owner.clone();
                let Some(owner) = owner else { return Vec::new() };
                let mut out: Vec<FnId> = self
                    .by_owner
                    .get(&(owner.clone(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
                // When the owner is itself a trait (a default method calling
                // self.other()), fan out to every implementation too.
                if let Some(impls) = self.by_trait.get(&(owner, name.clone())) {
                    out.extend(impls.iter().copied());
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            CallShape::TypePath(ty, name) => {
                let mut out: Vec<FnId> =
                    self.by_owner.get(&(ty.clone(), name.clone())).cloned().unwrap_or_default();
                if let Some(impls) = self.by_trait.get(&(ty.clone(), name.clone())) {
                    out.extend(impls.iter().copied());
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            CallShape::Method(name) => {
                if CALLEE_SKIP.contains(&name.as_str()) {
                    return Vec::new();
                }
                let Some(ids) = self.method_by_name.get(name) else { return Vec::new() };
                let idents = &ws.files[caller_file].idents;
                let mentioned = |id: &FnId| {
                    let f = &ws.files[id.file].st.fns[id.idx];
                    id.file == caller_file
                        || f.owner.as_ref().is_some_and(|o| idents.contains(o))
                        || f.trait_name.as_ref().is_some_and(|t| idents.contains(t))
                };
                ids.iter().copied().filter(mentioned).collect()
            }
        }
    }

    /// The audited hot-path roots: every `access`/`access_batch` method on
    /// a controller (owner named `*Controller*` or an impl of the
    /// `HybridMemoryController` trait) plus `Channel::schedule`.
    pub fn roots(&self, ws: &Workspace) -> Vec<FnId> {
        let mut roots = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (idx, f) in file.st.fns.iter().enumerate() {
                if f.in_test || f.body.is_none() {
                    continue;
                }
                let is_ctrl = f.owner.as_ref().is_some_and(|o| o.contains("Controller"))
                    || f.trait_name.as_deref() == Some("HybridMemoryController");
                let hit = (is_ctrl && matches!(f.name.as_str(), "access" | "access_batch"))
                    || (f.owner.as_deref() == Some("Channel") && f.name == "schedule");
                if hit {
                    roots.push(FnId { file: fi, idx });
                }
            }
        }
        roots
    }

    /// Cycle-tolerant BFS from `roots`. Returns every reached fn mapped to
    /// the caller it was first reached from (roots map to themselves).
    /// `descend` decides whether the walk expands a node's callees —
    /// returning `false` for fns carrying an `// audit: allow` makes a
    /// justified cold boundary prune its whole subtree.
    pub fn reachable(
        &self,
        roots: &[FnId],
        mut descend: impl FnMut(FnId) -> bool,
    ) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = roots.iter().copied().collect();
        for r in roots {
            parent.insert(*r, *r);
        }
        while let Some(id) = queue.pop_front() {
            if !descend(id) {
                continue;
            }
            if let Some(callees) = self.edges.get(&id) {
                for &c in callees {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(c) {
                        e.insert(id);
                        queue.push_back(c);
                    }
                }
            }
        }
        parent
    }
}

/// Extracts the call shapes in one fn body's token range.
fn call_sites(toks: &[Token], start: usize, end: usize) -> Vec<CallShape> {
    let mut out = Vec::new();
    let end = end.min(toks.len().saturating_sub(1));
    for i in start..=end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !next_code_is(toks, i + 1, '(') {
            continue;
        }
        let Some((j, prev)) = prev_code(toks, i) else {
            out.push(CallShape::Free(t.text.clone()));
            continue;
        };
        if prev.is_ident("fn") {
            continue; // a nested fn's own signature
        }
        if prev.is_punct('.') {
            match prev_code(toks, j) {
                Some((_, r)) if r.is_ident("self") => out.push(CallShape::OwnMethod(t.text.clone())),
                _ => out.push(CallShape::Method(t.text.clone())),
            }
        } else if prev.is_punct(':') {
            // `qual::name(` — walk back over the `::`.
            let seg = prev_code(toks, j)
                .filter(|(_, c)| c.is_punct(':'))
                .and_then(|(k, _)| prev_code(toks, k));
            match seg {
                Some((_, q)) if q.is_ident("Self") => out.push(CallShape::OwnMethod(t.text.clone())),
                Some((_, q)) if q.kind == TokKind::Ident => {
                    let first = q.text.chars().next().unwrap_or('_');
                    if first.is_ascii_uppercase() {
                        out.push(CallShape::TypePath(q.text.clone(), t.text.clone()));
                    } else {
                        // `crate::name`, `self::name`, `module::name` — a
                        // path to a free fn.
                        out.push(CallShape::Free(t.text.clone()));
                    }
                }
                _ => {}
            }
        } else {
            out.push(CallShape::Free(t.text.clone()));
        }
    }
    out
}

/// Next non-comment token at `i` is the punct `c`.
fn next_code_is(toks: &[Token], i: usize, c: char) -> bool {
    toks.iter().skip(i).find(|t| !t.is_comment()).is_some_and(|t| t.is_punct(c))
}

/// Previous non-comment token strictly before `i`.
fn prev_code(toks: &[Token], i: usize) -> Option<(usize, &Token)> {
    toks[..i].iter().enumerate().rev().find(|(_, t)| !t.is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect(),
        )
    }

    fn find(w: &Workspace, name: &str) -> FnId {
        for (fi, f) in w.files.iter().enumerate() {
            if let Some(idx) = f.st.fns.iter().position(|f| f.name == name) {
                return FnId { file: fi, idx };
            }
        }
        panic!("fn {name} not found");
    }

    #[test]
    fn cross_file_free_and_type_calls_resolve() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "fn top() { helper(); Dev::serve(1); }\nstruct Dev;"),
            ("crates/b/src/lib.rs", "pub fn helper() {}\nimpl Dev { pub fn serve(_x: u32) {} }"),
        ]);
        let g = CallGraph::build(&w);
        let edges = g.edges.get(&find(&w, "top")).unwrap();
        assert!(edges.contains(&find(&w, "helper")));
        assert!(edges.contains(&find(&w, "serve")));
    }

    #[test]
    fn same_file_free_fn_shadows_cross_file() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "fn top() { helper(); }\nfn helper() {}"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let g = CallGraph::build(&w);
        let edges = g.edges.get(&find(&w, "top")).unwrap();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges.iter().next().unwrap().file, 0);
    }

    #[test]
    fn trait_method_call_fans_out_to_mentioned_impls() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn drive(c: &mut Box<dyn Ctl>) { c.step(); }\ntrait Ctl { fn step(&mut self); }",
            ),
            ("crates/b/src/lib.rs", "impl Ctl for Fast { fn step(&mut self) {} }\nstruct Fast;"),
            ("crates/c/src/lib.rs", "impl Other { fn step(&mut self) {} }\nstruct Other;"),
        ]);
        let g = CallGraph::build(&w);
        let edges = g.edges.get(&find(&w, "drive")).unwrap();
        // Fans out to the trait impl (trait named in caller's file) but not
        // to the unrelated type never mentioned there.
        assert!(edges.iter().any(|id| id.file == 1));
        assert!(!edges.iter().any(|id| id.file == 2));
    }

    #[test]
    fn reachability_tolerates_cycles() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { a(); }",
        )]);
        let g = CallGraph::build(&w);
        let reach = g.reachable(&[find(&w, "a")], |_| true);
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn descend_false_prunes_subtree() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn a() { cold(); }\nfn cold() { deep(); }\nfn deep() {}",
        )]);
        let g = CallGraph::build(&w);
        let cold = find(&w, "cold");
        let reach = g.reachable(&[find(&w, "a")], |id| id != cold);
        assert!(reach.contains_key(&cold));
        assert!(!reach.contains_key(&find(&w, "deep")));
    }

    #[test]
    fn roots_cover_controllers_and_channel() {
        let w = ws(&[
            (
                "crates/core/src/lib.rs",
                "impl HybridMemoryController for Bee { fn access(&mut self) {} }\nstruct Bee;",
            ),
            ("crates/dram/src/lib.rs", "impl Channel { pub fn schedule(&mut self) {} }"),
            ("crates/x/src/lib.rs", "impl FooController { fn access_batch(&mut self) {} }"),
        ]);
        let g = CallGraph::build(&w);
        let roots = g.roots(&w);
        assert_eq!(roots.len(), 3, "{roots:?}");
    }
}
