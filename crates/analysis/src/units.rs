//! The cycle-domain unit lint: a lightweight unit system over
//! `// audit: unit(<u>)` annotations.
//!
//! The simulator mixes four integer domains — `cycles` (simulated DRAM
//! time), `bytes` (traffic), `accesses` (event counts) and `ns`
//! (wall-clock profiler time) — all stored as bare `u64`s. Nothing in the
//! type system stops `total_cycles + total_bytes`, and the one historical
//! near-miss (comparing span wall-ns against sim cycles in a bandwidth
//! figure) motivated annotating the domains explicitly.
//!
//! The model is deliberately name-keyed and lexical: an annotation
//! `// audit: unit(cycles)` on a field or fn puts that *name* in the
//! workspace-wide [`UnitTable`]; [`scan`] then walks every `+`/`-`/
//! comparison/compound-assign site in the unit-checked crates and flags
//! operands whose names resolve to different units. Names annotated with
//! conflicting units in different files are dropped from the table (a
//! name that means two things can't be checked by name). Multiplication
//! and division are never checked — they legitimately change units
//! (bytes/cycle, cycles×width).

use crate::check::Finding;
use crate::items::FileStructure;
use crate::lexer::{TokKind, Token};
use std::collections::BTreeMap;

/// The workspace-wide name → unit table.
#[derive(Debug, Default)]
pub struct UnitTable {
    /// `None` marks a name annotated with conflicting units (ignored).
    map: BTreeMap<String, Option<String>>,
}

impl UnitTable {
    /// Folds every file's `unit(...)` annotations into one table,
    /// dropping names with conflicting annotations.
    pub fn build<'a>(structures: impl Iterator<Item = &'a FileStructure>) -> UnitTable {
        let mut t = UnitTable::default();
        for st in structures {
            for f in &st.unit_fields {
                t.add(&f.name, &f.unit);
            }
            for f in &st.fns {
                if let Some(u) = &f.unit {
                    t.add(&f.name, u);
                }
            }
        }
        t
    }

    fn add(&mut self, name: &str, unit: &str) {
        match self.map.get_mut(name) {
            None => {
                self.map.insert(name.to_string(), Some(unit.to_string()));
            }
            Some(slot) => {
                if slot.as_deref() != Some(unit) {
                    *slot = None; // conflicting annotations: unusable by name
                }
            }
        }
    }

    /// The unit annotated for `name`, if unambiguous.
    pub fn unit_of(&self, name: &str) -> Option<&str> {
        self.map.get(name)?.as_deref()
    }

    /// Number of usable (non-conflicting) annotated names.
    pub fn len(&self) -> usize {
        self.map.values().filter(|v| v.is_some()).count()
    }

    /// True when no usable annotation exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// True for paths the unit lint applies to: the four crates whose
/// arithmetic crosses time/traffic domains.
pub fn in_scope(rel: &str) -> bool {
    ["crates/core/", "crates/dram/", "crates/obs/", "crates/sim/"]
        .iter()
        .any(|p| rel.starts_with(p))
}

/// Binary operators the lint checks: additive arithmetic, comparisons and
/// the additive compound assigns. Returns `(op text, token width)`.
fn op_at(toks: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let t = &toks[i];
    if t.kind != TokKind::Punct {
        return None;
    }
    let c = t.text.chars().next()?;
    let nxt = |k: usize, c: char| toks.get(i + k).is_some_and(|t| t.is_punct(c));
    match c {
        '+' if nxt(1, '=') => Some(("+=", 2)),
        '+' => Some(("+", 1)),
        '-' if nxt(1, '>') => None, // `->`
        '-' if nxt(1, '=') => Some(("-=", 2)),
        '-' => Some(("-", 1)),
        '<' if nxt(1, '<') => None, // shifts change magnitude semantics
        '<' if nxt(1, '=') => Some(("<=", 2)),
        '<' => Some(("<", 1)),
        '>' if nxt(1, '>') => None,
        '>' if nxt(1, '=') => Some((">=", 2)),
        '>' => Some((">", 1)),
        '=' if nxt(1, '=') => Some(("==", 2)),
        '!' if nxt(1, '=') => Some(("!=", 2)),
        _ => None,
    }
}

/// Resolves the operand that *ends* at token `i` (the token just before an
/// operator) to an annotated name: the tail ident of a field/method chain
/// (`self.bw.cycles` → `cycles`), the callee of a call (`total_bytes(…)`
/// → `total_bytes`), or the indexed name for `name[i]`.
fn lhs_name(toks: &[Token], mut i: usize) -> Option<String> {
    loop {
        let t = toks.get(i)?;
        if t.is_comment() {
            i = i.checked_sub(1)?;
            continue;
        }
        return match t.kind {
            TokKind::Ident => Some(t.text.clone()),
            TokKind::Punct if t.is_punct(')') || t.is_punct(']') => {
                let open = if t.is_punct(')') { '(' } else { '[' };
                let close = t.text.chars().next().unwrap();
                let mut depth = 0i64;
                while i > 0 {
                    if toks[i].is_punct(close) {
                        depth += 1;
                    } else if toks[i].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i -= 1;
                }
                // The name before `(`/`[` is the callee / indexed binding.
                let j = i.checked_sub(1)?;
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                    Some(toks[j].text.clone())
                } else {
                    None
                }
            }
            _ => None,
        };
    }
}

/// Resolves the operand that *starts* at token `i` (just after an
/// operator): walks a `a.b.c` / `A::b` chain and returns its last ident —
/// `other.total_nanos` → `total_nanos`, `self.accum.cycles` → `cycles`.
/// Numeric literals and anything else resolve to `None`.
fn rhs_name(toks: &[Token], mut i: usize) -> Option<String> {
    let mut last: Option<String> = None;
    while let Some(t) = toks.get(i) {
        if t.is_comment() {
            i += 1;
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                last = Some(t.text.clone());
                i += 1;
            }
            TokKind::Punct if t.is_punct('.') => {
                // Stop at a range `..`; keep walking a field chain.
                if toks.get(i + 1).is_some_and(|n| n.is_punct('.')) {
                    break;
                }
                i += 1;
            }
            TokKind::Punct if t.is_punct(':') && toks.get(i + 1).is_some_and(|n| n.is_punct(':')) => {
                i += 2;
            }
            TokKind::Punct if t.is_punct('&') || t.is_punct('*') => {
                if last.is_some() {
                    break; // `a * b`: the chain ended before the operator
                }
                i += 1; // leading borrow/deref
            }
            TokKind::Punct if t.is_punct('(') || t.is_punct('[') => {
                // A bare parenthesized expression is unresolvable;
                // `name(…)` or `name[…]` means the chain tail so far
                // names the value.
                last.as_ref()?;
                break;
            }
            _ => break,
        }
    }
    last
}

/// Scans one file's tokens for cross-unit arithmetic, appending
/// `(token index, finding)` pairs for the engine's allow filtering.
pub fn scan(
    rel: &str,
    toks: &[Token],
    st: &FileStructure,
    table: &UnitTable,
    out: &mut Vec<(usize, Finding)>,
) {
    if table.is_empty() {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        let Some((op, width)) = op_at(toks, i) else {
            i += 1;
            continue;
        };
        if st.in_test(i) {
            i += width;
            continue;
        }
        let lhs = i.checked_sub(1).and_then(|j| lhs_name(toks, j));
        let rhs = rhs_name(toks, i + width);
        if let (Some(l), Some(r)) = (lhs, rhs) {
            if let (Some(lu), Some(ru)) = (table.unit_of(&l), table.unit_of(&r)) {
                if lu != ru {
                    out.push((
                        i,
                        Finding {
                            rule: "unit-mismatch",
                            path: rel.to_string(),
                            line: toks[i].line,
                            msg: format!(
                                "`{l}` ({lu}) {op} `{r}` ({ru}): cross-unit arithmetic \
                                 between annotated domains"
                            ),
                        },
                    ));
                }
            }
        }
        i += width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::lex;

    fn check(src: &str) -> Vec<String> {
        let toks = lex(src);
        let st = items::analyze(&toks);
        let table = UnitTable::build(std::iter::once(&st));
        let mut out = Vec::new();
        scan("crates/sim/src/x.rs", &toks, &st, &table, &mut out);
        out.into_iter().map(|(_, f)| f.msg).collect()
    }

    #[test]
    fn cross_unit_add_and_compare_flagged() {
        let hits = check(
            "struct S {\n\
             total_cycles: u64, // audit: unit(cycles)\n\
             total_bytes: u64, // audit: unit(bytes)\n\
             }\n\
             fn f(s: &S) -> u64 { s.total_cycles + s.total_bytes }\n\
             fn g(s: &S) -> bool { s.total_bytes < s.total_cycles }\n",
        );
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].contains("(cycles) + `total_bytes` (bytes)"));
    }

    #[test]
    fn same_unit_and_unannotated_ok() {
        let hits = check(
            "struct S {\n\
             a_cycles: u64, // audit: unit(cycles)\n\
             b_cycles: u64, // audit: unit(cycles)\n\
             }\n\
             fn f(s: &S) -> u64 { s.a_cycles + s.b_cycles + 17 + s.other }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn fn_annotations_and_call_chains_resolve() {
        let hits = check(
            "struct S { wall_ns: u64 } // audit: unit(ns)\n\
             // audit: unit(cycles)\n\
             fn sim_cycles() -> u64 { 0 }\n\
             fn f(s: &S) -> bool { sim_cycles() > s.wall_ns }\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("`sim_cycles` (cycles) > `wall_ns` (ns)"));
    }

    #[test]
    fn mul_div_and_tests_exempt() {
        let hits = check(
            "struct S {\n\
             cyc: u64, // audit: unit(cycles)\n\
             byt: u64, // audit: unit(bytes)\n\
             }\n\
             fn rate(s: &S) -> u64 { s.byt / s.cyc }\n\
             #[cfg(test)]\n\
             mod tests { fn t(s: &super::S) -> u64 { s.byt + s.cyc } }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn conflicting_annotations_drop_the_name() {
        let hits = check(
            "struct A { v: u64 } // audit: unit(cycles)\n\
             struct B {\n\
             v2: u64, // audit: unit(bytes)\n\
             }\n\
             fn f(a: &A, b: &B) -> u64 { a.v + b.v2 }\n",
        );
        assert_eq!(hits.len(), 1);
        let none = check(
            "struct A { v: u64 } // audit: unit(cycles)\n\
             struct B {\n\
             v: u64, // audit: unit(bytes)\n\
             }\n\
             fn f(a: &A, b: &B) -> u64 { a.v + b.v }\n",
        );
        assert!(none.is_empty(), "{none:?}");
    }
}
