#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Zero-dependency determinism & hot-path static analysis for the
//! Bumblebee workspace.
//!
//! The evaluation substrate rests on two properties `cargo clippy` cannot
//! check: **bit-identical simulation output** at any `--jobs` width, and an
//! **allocation/panic-free controller hot path**. This crate enforces both
//! offline, with no syntax-tree dependency — a hand-rolled lexer
//! ([`lexer`]), a thin item-structure recovery pass ([`items`]), and a
//! rule engine ([`check`]) driven by the catalog in [`rules`]:
//!
//! * `det-*` — bans `HashMap`/`HashSet` with the default `RandomState`,
//!   wall-clock reads outside `crates/obs`, ambient entropy, and iteration
//!   over unordered maps;
//! * `hot-*` — bans panics and heap allocation in functions annotated
//!   `// audit: hot-path` (the controller access flow), and keeps the
//!   annotation closure honest within a file;
//! * `struct-*` — crate roots must `#![forbid(unsafe_code)]` and
//!   `#![deny(missing_docs)]`; every pub item in `crates/core` and
//!   `crates/types` must be documented.
//!
//! Audited exceptions use `// audit: allow(<rule>) -- <reason>`; the tool
//! counts and reports them (see [`items`] for the grammar). The CLI lives
//! in `bin/audit_tool` (`check` / `list-rules` / `explain <rule>`) and is
//! a hard gate in `scripts/verify.sh`.
//!
//! The dynamic complement — cross-structure invariant sweeps behind
//! `--features checked` in `bumblebee-core` — is documented in DESIGN.md
//! ("Static analysis & checked builds").

pub mod check;
pub mod graph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod units;

pub use check::{check_source, check_workspace, AuditReport, Finding};

/// Process exit-code conventions shared by every workspace CLI tool
/// (`audit_tool`, `bench_tool`, `trace_tool`, `bench_harness`).
///
/// * [`OK`](exitcode::OK) — clean run, nothing to report;
/// * [`FINDINGS`](exitcode::FINDINGS) — the tool ran correctly and found
///   real problems (lint findings, regressions, diffs);
/// * [`USAGE`](exitcode::USAGE) — bad arguments or unreadable/invalid
///   input; the check itself never ran.
pub mod exitcode {
    /// Clean run.
    pub const OK: i32 = 0;
    /// The tool ran and found problems (findings, regressions, diffs).
    pub const FINDINGS: i32 = 1;
    /// Usage or I/O error — the check never ran.
    pub const USAGE: i32 = 2;
}
