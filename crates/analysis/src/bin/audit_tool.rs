//! Workspace determinism & hot-path auditor.
//!
//! ```text
//! audit_tool check [--root DIR] [FILE…]   # audit the workspace (or FILEs)
//! audit_tool list-rules                   # one line per rule
//! audit_tool explain <rule>               # the long story behind one rule
//! ```
//!
//! Exit codes follow the shared convention in
//! [`memsim_analysis::exitcode`]: 0 clean, 1 findings, 2 usage/IO error.

use memsim_analysis::check::{check_files, check_workspace, AuditReport};
use memsim_analysis::{exitcode, rules};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: audit_tool check [--root DIR] [FILE...]\n       audit_tool list-rules\n       audit_tool explain <rule>"
    );
    std::process::exit(exitcode::USAGE);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("list-rules") => {
            for r in rules::RULES {
                println!("{:<18} {}", r.id, r.summary);
            }
            exitcode::OK
        }
        Some("explain") => match args.get(1).and_then(|id| rules::rule(id)) {
            Some(r) => {
                println!("{} — {}\n\n{}", r.id, r.summary, r.explain);
                exitcode::OK
            }
            None => {
                eprintln!(
                    "error: unknown rule `{}` (see `audit_tool list-rules`)",
                    args.get(1).map(String::as_str).unwrap_or("")
                );
                exitcode::USAGE
            }
        },
        _ => usage(),
    };
    std::process::exit(code);
}

fn cmd_check(args: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(dir) = args.get(i + 1) else { usage() };
                root = PathBuf::from(dir);
                i += 2;
            }
            flag if flag.starts_with('-') => usage(),
            file => {
                files.push(PathBuf::from(file));
                i += 1;
            }
        }
    }
    let report = if files.is_empty() { check_workspace(&root) } else { check_files(&root, &files) };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return exitcode::USAGE;
        }
    };
    render(&report)
}

fn render(report: &AuditReport) -> i32 {
    for f in &report.findings {
        println!("{f}");
    }
    let verdict = if report.clean() { "clean" } else { "FAIL" };
    eprintln!(
        "audit: {} — {} file(s), {} finding(s), {} hot-path fn(s) audited, {} audited exception(s)",
        verdict,
        report.files,
        report.findings.len(),
        report.hot_fns,
        report.exceptions.len(),
    );
    if !report.exceptions.is_empty() {
        eprintln!("audited exceptions (allow directives with reasons):");
        for (rule, path, line, reason) in &report.exceptions {
            eprintln!("  {rule:<18} {path}:{line}: {reason}");
        }
    }
    if report.clean() {
        exitcode::OK
    } else {
        exitcode::FINDINGS
    }
}
