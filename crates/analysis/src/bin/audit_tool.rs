//! Workspace determinism & hot-path auditor.
//!
//! ```text
//! audit_tool check [--root DIR] [--format text|json] [--baseline FILE] [FILE…]
//! audit_tool list-rules                   # one line per rule, sorted by id
//! audit_tool explain <rule>               # the long story behind one rule
//! ```
//!
//! `--format json` prints the versioned machine-readable report (see
//! [`AuditReport::to_json`]) to stdout instead of the text findings.
//!
//! `--baseline FILE` turns the audit into a **ratchet** against a committed
//! JSON report (normally `results/audit_baseline.json`): findings already in
//! the baseline are tolerated, findings not in the baseline fail, and
//! baseline entries that no longer reproduce fail too — fixed debt must be
//! deleted from the baseline so the bar only moves down. Baseline entries
//! are matched on (rule, path, msg) so line drift from unrelated edits does
//! not churn the file.
//!
//! Exit codes follow the shared convention in
//! [`memsim_analysis::exitcode`]: 0 clean, 1 findings, 2 usage/IO error.

use memsim_analysis::check::{check_files, check_workspace, AuditReport};
use memsim_analysis::{exitcode, json, rules};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: audit_tool check [--root DIR] [--format text|json] [--baseline FILE] [FILE...]\n       audit_tool list-rules\n       audit_tool explain <rule>"
    );
    std::process::exit(exitcode::USAGE);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("list-rules") => {
            let mut catalog: Vec<_> = rules::RULES.iter().collect();
            catalog.sort_by_key(|r| r.id);
            for r in catalog {
                println!("{:<22} {}", r.id, r.summary);
            }
            exitcode::OK
        }
        Some("explain") => match args.get(1).and_then(|id| rules::rule(id)) {
            Some(r) => {
                println!("{} — {}\n\n{}", r.id, r.summary, r.explain);
                exitcode::OK
            }
            None => {
                eprintln!(
                    "error: unknown rule `{}` (see `audit_tool list-rules`)",
                    args.get(1).map(String::as_str).unwrap_or("")
                );
                exitcode::USAGE
            }
        },
        _ => usage(),
    };
    std::process::exit(code);
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn cmd_check(args: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut format = Format::Text;
    let mut baseline: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(dir) = args.get(i + 1) else { usage() };
                root = PathBuf::from(dir);
                i += 2;
            }
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    _ => usage(),
                }
                i += 2;
            }
            "--baseline" => {
                let Some(path) = args.get(i + 1) else { usage() };
                baseline = Some(PathBuf::from(path));
                i += 2;
            }
            flag if flag.starts_with('-') => usage(),
            file => {
                files.push(PathBuf::from(file));
                i += 1;
            }
        }
    }
    let report = if files.is_empty() { check_workspace(&root) } else { check_files(&root, &files) };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return exitcode::USAGE;
        }
    };
    let ratchet = match baseline {
        Some(path) => match apply_baseline(&report, &path) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("error: baseline {}: {e}", path.display());
                return exitcode::USAGE;
            }
        },
        None => None,
    };
    render(&report, format, ratchet)
}

/// Outcome of comparing the report against a committed baseline.
struct Ratchet {
    /// Findings not present in the baseline — regressions.
    new: Vec<usize>,
    /// Baseline keys that no longer reproduce — must be deleted.
    stale: Vec<String>,
    /// Findings tolerated because the baseline lists them.
    tolerated: usize,
}

/// Stable identity of a finding for baseline matching. Line numbers are
/// excluded on purpose: unrelated edits move lines, and a baseline that
/// churns on every edit stops being reviewed.
fn finding_key(rule: &str, path: &str, msg: &str) -> String {
    format!("{rule}\x1f{path}\x1f{msg}")
}

fn apply_baseline(report: &AuditReport, path: &std::path::Path) -> Result<Ratchet, String> {
    let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = json::parse(&src)?;
    let entries = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .ok_or("missing `findings` array")?;
    let mut allowed = BTreeSet::new();
    for e in entries {
        let key = finding_key(
            e.get("rule").and_then(|v| v.as_str()).ok_or("finding missing `rule`")?,
            e.get("path").and_then(|v| v.as_str()).ok_or("finding missing `path`")?,
            e.get("msg").and_then(|v| v.as_str()).ok_or("finding missing `msg`")?,
        );
        allowed.insert(key);
    }
    let mut seen = BTreeSet::new();
    let mut new = Vec::new();
    let mut tolerated = 0;
    for (i, f) in report.findings.iter().enumerate() {
        let key = finding_key(f.rule, &f.path, &f.msg);
        if allowed.contains(&key) {
            tolerated += 1;
            seen.insert(key);
        } else {
            new.push(i);
        }
    }
    let stale = allowed
        .into_iter()
        .filter(|k| !seen.contains(k))
        .map(|k| k.replace('\x1f', " / "))
        .collect();
    Ok(Ratchet { new, stale, tolerated })
}

fn render(report: &AuditReport, format: Format, ratchet: Option<Ratchet>) -> i32 {
    if format == Format::Json {
        print!("{}", report.to_json());
    } else {
        match &ratchet {
            // Under a ratchet, only regressions are actionable output.
            Some(r) => {
                for &i in &r.new {
                    println!("{}", report.findings[i]);
                }
            }
            None => {
                for f in &report.findings {
                    println!("{f}");
                }
            }
        }
    }
    let failed = match &ratchet {
        Some(r) => !r.new.is_empty() || !r.stale.is_empty(),
        None => !report.clean(),
    };
    let verdict = if failed { "FAIL" } else { "clean" };
    eprintln!(
        "audit: {} — {} file(s), {} finding(s), {} hot-path fn(s) audited, {} merge fn(s), {} unit annotation(s), {} call edge(s), {} audited exception(s)",
        verdict,
        report.files,
        report.findings.len(),
        report.hot_fns,
        report.merge_fns,
        report.unit_annotations,
        report.call_edges,
        report.exceptions.len(),
    );
    if let Some(r) = &ratchet {
        eprintln!(
            "baseline: {} new finding(s), {} stale entr(ies), {} tolerated",
            r.new.len(),
            r.stale.len(),
            r.tolerated
        );
        for s in &r.stale {
            eprintln!("  stale (fixed — delete from baseline): {s}");
        }
    }
    if !report.exceptions.is_empty() && format == Format::Text {
        eprintln!("audited exceptions (allow directives with reasons):");
        for (rule, path, line, reason) in &report.exceptions {
            eprintln!("  {rule:<22} {path}:{line}: {reason}");
        }
    }
    if failed {
        exitcode::FINDINGS
    } else {
        exitcode::OK
    }
}
