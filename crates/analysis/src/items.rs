//! Item-structure recovery over the flat token stream.
//!
//! The audit rules need a little more than raw tokens: which `fn` items
//! exist (name + body token range), which of them carry `// audit:`
//! directives, which regions are `#[cfg(test)]` code, and which local
//! names are bound to hash-based collections. This module recovers exactly
//! that by linear scans — no AST, no type information.
//!
//! # The `// audit:` annotation grammar
//!
//! ```text
//! // audit: hot-path
//! // audit: merge
//! // audit: unit(cycles|bytes|accesses|ns)
//! // audit: allow(<rule-id>) -- <reason>
//! ```
//!
//! * `hot-path` marks the next `fn` item (only comments, attributes and
//!   visibility/qualifier keywords may stand between the comment and the
//!   `fn`). The fn's body is then checked by the `hot-*` rules.
//! * `merge` marks the next `fn` item as a shard-merge function: its body
//!   is checked by the `merge-commutative` rule (only order-independent
//!   accumulation is allowed — see the rule catalog).
//! * `unit(<u>)` attaches a measurement unit to the next field or `fn`
//!   item (or, when trailing a field declaration, to that field). The
//!   `unit-mismatch` rule flags additive arithmetic and comparisons
//!   between names carrying different units.
//! * `allow(<rule-id>) -- <reason>` suppresses findings of one rule. Its
//!   scope depends on placement: trailing a code line → that line; on its
//!   own line directly above a `fn` item → the whole fn; on its own line
//!   elsewhere → the next code line. The reason after `--` is mandatory;
//!   the tool counts every audited exception and reports the total.
//! * A malformed directive is itself a finding (`audit-syntax`) — silently
//!   ignored annotations would be worse than none.

use crate::lexer::{TokKind, Token};

/// A parsed `// audit:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// audit: hot-path` — the next fn is a controller hot path.
    HotPath,
    /// `// audit: merge` — the next fn is a shard-merge function.
    Merge,
    /// `// audit: unit(u)` — the next field/fn carries measurement unit
    /// `u` (one of [`UNITS`]).
    Unit(String),
    /// `// audit: allow(rule) -- reason` — an audited exception.
    Allow {
        /// Rule id being allowed.
        rule: String,
        /// Mandatory justification (after `--`).
        reason: String,
    },
}

/// The closed set of measurement units `unit(...)` accepts. `cycles` are
/// simulated CPU cycles, `ns` wall-clock nanoseconds (telemetry only) —
/// the two time domains the `unit-mismatch` rule must keep apart.
pub const UNITS: &[&str] = &["cycles", "bytes", "accesses", "ns"];

/// Where an `allow` directive applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// Findings on this exact source line.
    Line(u32),
    /// Findings anywhere in the fn whose body spans these token indices.
    Fn(usize, usize),
    /// Findings anywhere in the file (directive at crate-attribute level).
    File,
}

/// One accepted `allow` with its resolved scope.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id being suppressed.
    pub rule: String,
    /// Scope the suppression applies to.
    pub scope: AllowScope,
    /// Line of the directive comment (for the exception report).
    pub line: u32,
    /// The justification text.
    pub reason: String,
}

/// A recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The fn's name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub tok: usize,
    /// Token-index range of the body `{ … }`, inclusive; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// The type this fn is a method of: the `Self` type of the enclosing
    /// `impl` block, or the trait name for methods declared inside a
    /// `trait` block. `None` for free fns.
    pub owner: Option<String>,
    /// The trait being implemented when the enclosing block is
    /// `impl Trait for Type` (or declared, for `trait Trait` blocks).
    pub trait_name: Option<String>,
    /// Marked `// audit: hot-path`.
    pub hot: bool,
    /// Marked `// audit: merge`.
    pub merge: bool,
    /// Unit of the fn's return value, from `// audit: unit(...)`.
    pub unit: Option<String>,
    /// Inside a `#[cfg(test)]` region (rules skip it).
    pub in_test: bool,
}

/// A struct field carrying a `// audit: unit(...)` annotation.
#[derive(Debug, Clone)]
pub struct UnitField {
    /// Field name.
    pub name: String,
    /// One of [`UNITS`].
    pub unit: String,
    /// 1-indexed line of the field declaration.
    pub line: u32,
}

/// A malformed `// audit:` comment (reported as `audit-syntax`).
#[derive(Debug, Clone)]
pub struct SyntaxError {
    /// Line of the offending comment.
    pub line: u32,
    /// What was wrong.
    pub msg: String,
}

/// Everything the rules need to know about one file's structure.
#[derive(Debug, Default)]
pub struct FileStructure {
    /// All `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// Accepted `allow` directives.
    pub allows: Vec<Allow>,
    /// Malformed directives.
    pub errors: Vec<SyntaxError>,
    /// Token-index ranges of `#[cfg(test)]` regions.
    pub test_regions: Vec<(usize, usize)>,
    /// Names lexically bound to `HashMap`/`HashSet` values or fields.
    pub hash_bindings: Vec<String>,
    /// Fields annotated `// audit: unit(...)`.
    pub unit_fields: Vec<UnitField>,
}

impl FileStructure {
    /// True when token index `i` falls inside a `#[cfg(test)]` region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// True when `rule` is allowed at `line` / token index `i`.
    pub fn allowed(&self, rule: &str, line: u32, i: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && match a.scope {
                    AllowScope::Line(l) => l == line,
                    AllowScope::Fn(s, e) => i >= s && i <= e,
                    AllowScope::File => true,
                }
        })
    }
}

/// Parses the text of a line comment into a directive, if it is one.
///
/// Returns `None` for ordinary comments, `Some(Ok(..))` for well-formed
/// directives and `Some(Err(msg))` for malformed ones.
pub fn parse_directive(text: &str) -> Option<Result<Directive, String>> {
    let body = text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("audit:")?.trim();
    if rest == "hot-path" {
        return Some(Ok(Directive::HotPath));
    }
    if rest == "merge" {
        return Some(Ok(Directive::Merge));
    }
    if let Some(args) = rest.strip_prefix("unit") {
        let args = args.trim();
        let unit = args
            .strip_prefix('(')
            .and_then(|a| a.strip_suffix(')'))
            .map(str::trim)
            .unwrap_or("");
        if UNITS.contains(&unit) {
            return Some(Ok(Directive::Unit(unit.into())));
        }
        return Some(Err(format!(
            "unit: expected `unit(<u>)` with <u> one of {} (got `{args}`)",
            UNITS.join("|")
        )));
    }
    if let Some(args) = rest.strip_prefix("allow") {
        let args = args.trim();
        let Some(close) = args.find(')') else {
            return Some(Err("allow: missing closing parenthesis".into()));
        };
        let Some(rule) = args.strip_prefix('(').map(|a| a[..close - 1].trim()) else {
            return Some(Err("allow: expected `allow(<rule>)`".into()));
        };
        if rule.is_empty() {
            return Some(Err("allow: empty rule id".into()));
        }
        let tail = args[close + 1..].trim();
        let Some(reason) = tail.strip_prefix("--").map(str::trim) else {
            return Some(Err(format!("allow({rule}): missing `-- <reason>`")));
        };
        if reason.is_empty() {
            return Some(Err(format!("allow({rule}): empty reason")));
        }
        return Some(Ok(Directive::Allow { rule: rule.into(), reason: reason.into() }));
    }
    Some(Err(format!("unknown audit directive `{rest}`")))
}

/// Keywords that may legally stand between an audit comment and its `fn`.
fn is_prelude_ident(s: &str) -> bool {
    matches!(
        s,
        "pub" | "crate" | "super" | "self" | "in" | "const" | "async" | "unsafe" | "extern"
            | "default"
    )
}

/// Recovers the item structure of one token stream.
pub fn analyze(toks: &[Token]) -> FileStructure {
    let mut st = FileStructure::default();
    collect_test_regions(toks, &mut st);
    let owners = collect_owner_regions(toks);
    collect_fns(toks, &owners, &mut st);
    collect_directives(toks, &mut st);
    collect_hash_bindings(toks, &mut st);
    st
}

/// One `impl`/`trait` block: its brace range and the names the methods
/// inside it belong to.
#[derive(Debug, Clone)]
struct OwnerRegion {
    start: usize,
    end: usize,
    owner: String,
    trait_name: Option<String>,
}

/// The base ident of a type path: the last depth-0 ident before `stop`
/// keywords, so `fmt::Display` → `Display`, `Vec<T>` → `Vec`.
fn type_base_ident(toks: &[Token], mut j: usize, stops: &[&str]) -> (Option<String>, usize) {
    let mut angle = 0i64;
    let mut base = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle <= 0 && (t.is_punct('{') || t.is_punct(';')) {
            break;
        } else if angle <= 0 && t.kind == TokKind::Ident {
            if stops.contains(&t.text.as_str()) {
                break;
            }
            if !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "crate" | "super" | "self") {
                base = Some(t.text.clone());
            }
        }
        j += 1;
    }
    (base, j)
}

/// Recovers `impl [Trait for] Type { … }` and `trait Name { … }` regions
/// so methods can be attributed to their `Self` type (or declaring
/// trait). Linear scan; impl blocks never nest in this workspace.
fn collect_owner_regions(toks: &[Token]) -> Vec<OwnerRegion> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("impl") {
            // Item position only: `impl Trait` in type position (return
            // types, bounds) follows `->`, `(`, `<`, `&`, `,`, `:` or `=`.
            let item_pos = match toks[..i].iter().rev().find(|p| !p.is_comment()) {
                None => true,
                Some(p) => {
                    p.is_punct('}') || p.is_punct('{') || p.is_punct(';') || p.is_punct(']')
                        || p.is_ident("unsafe")
                }
            };
            if !item_pos {
                i += 1;
                continue;
            }
            // Skip the generic parameter list, if any.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                let mut angle = 0i64;
                while j < toks.len() {
                    if toks[j].is_punct('<') {
                        angle += 1;
                    } else if toks[j].is_punct('>') {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let (first, after) = type_base_ident(toks, j, &["for", "where"]);
            let (owner, trait_name, mut b) =
                if toks.get(after).is_some_and(|t| t.is_ident("for")) {
                    let (second, after2) = type_base_ident(toks, after + 1, &["where"]);
                    (second, first, after2)
                } else {
                    (first, None, after)
                };
            while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
                b += 1; // skip a where clause
            }
            if let (Some(owner), true) = (owner, toks.get(b).is_some_and(|t| t.is_punct('{'))) {
                regions.push(OwnerRegion {
                    start: b,
                    end: match_brace(toks, b),
                    owner,
                    trait_name,
                });
                i = b;
            }
        } else if t.is_ident("trait") {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let mut b = i + 2;
                while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
                    b += 1;
                }
                if toks.get(b).is_some_and(|t| t.is_punct('{')) {
                    regions.push(OwnerRegion {
                        start: b,
                        end: match_brace(toks, b),
                        owner: name.text.clone(),
                        trait_name: Some(name.text.clone()),
                    });
                    i = b;
                }
            }
        }
        i += 1;
    }
    regions
}

/// Finds the token index of the matching `}` for the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

fn collect_test_regions(toks: &[Token], st: &mut FileStructure) {
    // Pattern: `#` `[` cfg `(` test … `]` (comments allowed) `mod` ident `{`.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        {
            // Scan the attribute for the ident `test` before `]`.
            let mut j = i + 3;
            let mut saw_test = false;
            while j < toks.len() && !toks[j].is_punct(']') {
                saw_test |= toks[j].is_ident("test");
                j += 1;
            }
            if saw_test {
                // Skip comments/attributes to the next code token.
                let mut k = j + 1;
                while k < toks.len() && toks[k].is_comment() {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.is_ident("mod")) {
                    // Body opens at the first `{` after the mod name.
                    let mut b = k + 1;
                    while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
                        b += 1;
                    }
                    if b < toks.len() && toks[b].is_punct('{') {
                        let end = match_brace(toks, b);
                        st.test_regions.push((i, end));
                        i = j + 1;
                        continue;
                    }
                } else {
                    // `#[cfg(test)]` on a non-mod item (fn, use, impl):
                    // conservatively mark up to the end of that item's
                    // body or its terminating `;`.
                    let mut b = k;
                    while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
                        b += 1;
                    }
                    let end =
                        if b < toks.len() && toks[b].is_punct('{') { match_brace(toks, b) } else { b };
                    st.test_regions.push((i, end));
                }
            }
        }
        i += 1;
    }
}

fn collect_fns(toks: &[Token], owners: &[OwnerRegion], st: &mut FileStructure) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                // Body opens at the first `{` before any `;` at this level.
                let mut b = i + 2;
                let mut body = None;
                while b < toks.len() {
                    if toks[b].is_punct('{') {
                        body = Some((b, match_brace(toks, b)));
                        break;
                    }
                    if toks[b].is_punct(';') {
                        break;
                    }
                    b += 1;
                }
                // Innermost (last-starting) owner region containing the fn.
                let region = owners
                    .iter()
                    .filter(|r| i >= r.start && i <= r.end)
                    .max_by_key(|r| r.start);
                st.fns.push(FnItem {
                    name: name_tok.text.clone(),
                    line: toks[i].line,
                    tok: i,
                    body,
                    owner: region.map(|r| r.owner.clone()),
                    trait_name: region.and_then(|r| r.trait_name.clone()),
                    hot: false,
                    merge: false,
                    unit: None,
                    in_test: st.in_test(i),
                });
            }
        }
        i += 1;
    }
}

fn collect_directives(toks: &[Token], st: &mut FileStructure) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let parsed = match parse_directive(&t.text) {
            None => continue,
            Some(Err(msg)) => {
                st.errors.push(SyntaxError { line: t.line, msg });
                continue;
            }
            Some(Ok(d)) => d,
        };
        // Crate-attribute-level directives (before any code) are file-scoped.
        let first_code = toks.iter().position(|t| !t.is_comment()).unwrap_or(usize::MAX);
        let trailing = toks[..i].iter().any(|p| !p.is_comment() && p.line == t.line);
        let binds_fn = next_fn_item(toks, i);
        match parsed {
            Directive::HotPath => match binds_fn {
                Some(fi) if !trailing => st.fns[fi].hot = true,
                _ => st.errors.push(SyntaxError {
                    line: t.line,
                    msg: "hot-path must be on its own line directly above a fn item".into(),
                }),
            },
            Directive::Merge => match binds_fn {
                Some(fi) if !trailing => st.fns[fi].merge = true,
                _ => st.errors.push(SyntaxError {
                    line: t.line,
                    msg: "merge must be on its own line directly above a fn item".into(),
                }),
            },
            Directive::Unit(unit) => {
                if trailing {
                    // `pub cycles: u64, // audit: unit(cycles)` — bind to
                    // the field declared on this line.
                    match field_on_line(toks, t.line) {
                        Some(name) => st.unit_fields.push(UnitField { name, unit, line: t.line }),
                        None => st.errors.push(SyntaxError {
                            line: t.line,
                            msg: "trailing unit(...) must follow a field declaration".into(),
                        }),
                    }
                } else if let Some(fi) = binds_fn {
                    st.fns[fi].unit = Some(unit);
                } else {
                    match next_field(toks, i) {
                        Some((name, line)) => st.unit_fields.push(UnitField { name, unit, line }),
                        None => st.errors.push(SyntaxError {
                            line: t.line,
                            msg: "unit(...) must annotate a field or fn item".into(),
                        }),
                    }
                }
            }
            Directive::Allow { rule, reason } => {
                let scope = if trailing {
                    AllowScope::Line(t.line)
                } else if i < first_code {
                    AllowScope::File
                } else if let Some(fi) = binds_fn {
                    match st.fns[fi].body {
                        Some((s, e)) => AllowScope::Fn(s, e),
                        None => AllowScope::Line(st.fns[fi].line),
                    }
                } else {
                    AllowScope::Line(next_code_line(toks, i))
                };
                st.allows.push(Allow { rule, scope, line: t.line, reason });
            }
        }
    }
}

/// If only comments/attributes/visibility separate token `i` from a `fn`
/// keyword, returns the index (into `st.fns` order) of that fn.
fn next_fn_item(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_comment() {
            j += 1;
        } else if t.is_punct('#') {
            // Skip `#[…]` / `#![…]`.
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_punct('!')) {
                k += 1;
            }
            if !toks.get(k).is_some_and(|t| t.is_punct('[')) {
                return None;
            }
            let mut depth = 0i64;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        } else if t.kind == TokKind::Ident && is_prelude_ident(&t.text) {
            j += 1;
        } else if t.is_punct('(') || t.is_punct(')') {
            j += 1; // pub(crate)
        } else if t.is_ident("fn") {
            let line = t.line;
            return find_fn_at(toks, j, line);
        } else {
            return None;
        }
    }
    None
}

/// Index into the source-order fn list of the `fn` keyword at token `j`.
fn find_fn_at(toks: &[Token], j: usize, line: u32) -> Option<usize> {
    // Count how many `fn` keyword tokens precede index j.
    let mut n = 0usize;
    for (k, t) in toks.iter().enumerate() {
        if t.is_ident("fn") && toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            if k == j {
                return Some(n);
            }
            n += 1;
        }
        let _ = line;
    }
    None
}

/// The field declared on source line `line`: the last `ident :` pattern
/// (excluding `::` paths) among that line's tokens.
fn field_on_line(toks: &[Token], line: u32) -> Option<String> {
    let mut found = None;
    for (i, t) in toks.iter().enumerate() {
        if t.line != line || t.kind != TokKind::Ident {
            continue;
        }
        if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && (i == 0 || !toks[i - 1].is_punct(':'))
        {
            found = Some(t.text.clone());
        }
    }
    found
}

/// The next field declaration after token `i`: skips comments, attributes
/// and `pub`/`pub(crate)` prefixes, expects `ident :`.
fn next_field(toks: &[Token], i: usize) -> Option<(String, u32)> {
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_comment() || t.is_ident("pub") || t.is_punct('(') || t.is_punct(')')
            || t.is_ident("crate") || t.is_ident("super")
        {
            j += 1;
        } else if t.is_punct('#') {
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        } else if t.kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            return Some((t.text.clone(), t.line));
        } else {
            return None;
        }
    }
    None
}

fn next_code_line(toks: &[Token], i: usize) -> u32 {
    toks[i + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
        .unwrap_or(toks[i].line + 1)
}

fn collect_hash_bindings(toks: &[Token], st: &mut FileStructure) {
    // `let [mut] NAME … = … Hash{Map,Set} … ;` and field/param patterns
    // `NAME : … Hash{Map,Set}` — purely lexical, good enough to catch
    // iteration over a map someone sneaked in.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let name = name.text.clone();
                let mut k = j + 1;
                let mut uses_hash = false;
                while k < toks.len() && !toks[k].is_punct(';') {
                    uses_hash |= toks[k].is_ident("HashMap") || toks[k].is_ident("HashSet");
                    k += 1;
                }
                if uses_hash {
                    st.hash_bindings.push(name);
                }
                i = k;
                continue;
            }
        }
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && (i == 0 || !toks[i - 1].is_punct(':'))
        {
            // Look at the type tokens up to `,`, `)`, `}`, `;` or `=`.
            let mut k = i + 2;
            let mut depth = 0i64;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                } else if depth <= 0
                    && (t.is_punct(',') || t.is_punct(')') || t.is_punct('}') || t.is_punct(';')
                        || t.is_punct('='))
                {
                    break;
                }
                if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    st.hash_bindings.push(toks[i].text.clone());
                    break;
                }
                k += 1;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn directive_parsing() {
        assert_eq!(parse_directive("// audit: hot-path"), Some(Ok(Directive::HotPath)));
        assert_eq!(
            parse_directive("// audit: allow(det-clock) -- wall time only"),
            Some(Ok(Directive::Allow {
                rule: "det-clock".into(),
                reason: "wall time only".into()
            }))
        );
        assert!(parse_directive("// plain comment").is_none());
        assert!(matches!(parse_directive("// audit: allow(x)"), Some(Err(_))));
        assert!(matches!(parse_directive("// audit: frobnicate"), Some(Err(_))));
    }

    #[test]
    fn hot_path_binds_through_attributes() {
        let toks = lex("// audit: hot-path\n#[inline]\npub fn fast(&self) -> u32 { 1 }\nfn slow() {}");
        let st = analyze(&toks);
        assert_eq!(st.fns.len(), 2);
        assert!(st.fns[0].hot && st.fns[0].name == "fast");
        assert!(!st.fns[1].hot);
    }

    #[test]
    fn allow_scopes() {
        let src = "\
fn a() {
    x(); // audit: allow(hot-panic) -- trailing
}
// audit: allow(hot-alloc) -- whole fn
fn b() {
    y();
}
";
        let st = analyze(&lex(src));
        assert_eq!(st.allows.len(), 2);
        assert_eq!(st.allows[0].scope, AllowScope::Line(2));
        assert!(matches!(st.allows[1].scope, AllowScope::Fn(..)));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}";
        let st = analyze(&lex(src));
        assert!(!st.fns[0].in_test);
        assert!(st.fns[1].in_test, "helper is inside #[cfg(test)]");
    }

    #[test]
    fn owners_recovered_for_impl_trait_and_free_fns() {
        let src = "\
fn free() {}
impl Ring { fn push(&mut self) {} }
impl fmt::Display for Ring { fn fmt(&self) {} }
trait Tick { fn tick(&self); fn twice(&self) { self.tick(); self.tick(); } }
impl<T: Copy> Wrap<T> { fn get(&self) {} }
fn tail() -> impl Iterator<Item = u32> { 0..1 }
";
        let st = analyze(&lex(src));
        let by_name = |n: &str| st.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("free").owner, None);
        assert_eq!(by_name("push").owner.as_deref(), Some("Ring"));
        assert_eq!(by_name("push").trait_name, None);
        assert_eq!(by_name("fmt").owner.as_deref(), Some("Ring"));
        assert_eq!(by_name("fmt").trait_name.as_deref(), Some("Display"));
        assert_eq!(by_name("tick").owner.as_deref(), Some("Tick"));
        assert_eq!(by_name("twice").trait_name.as_deref(), Some("Tick"));
        assert_eq!(by_name("get").owner.as_deref(), Some("Wrap"));
        // `-> impl Iterator` is type position, not an impl block.
        assert_eq!(by_name("tail").owner, None);
    }

    #[test]
    fn merge_directive_binds_next_fn() {
        let src = "// audit: merge\npub fn merge(&mut self, o: &S) {}\nfn other() {}";
        let st = analyze(&lex(src));
        assert!(st.fns[0].merge && !st.fns[1].merge);
        // Trailing placement is malformed, like hot-path.
        let st = analyze(&lex("fn f() {} // audit: merge"));
        assert_eq!(st.errors.len(), 1);
    }

    #[test]
    fn unit_directive_binds_fields_and_fns() {
        let src = "\
struct S {
    // audit: unit(cycles)
    pub busy: u64,
    pub bytes_moved: u64, // audit: unit(bytes)
}
// audit: unit(accesses)
fn total(&self) -> u64 { 0 }
";
        let st = analyze(&lex(src));
        assert_eq!(st.unit_fields.len(), 2);
        assert_eq!((st.unit_fields[0].name.as_str(), st.unit_fields[0].unit.as_str()), ("busy", "cycles"));
        assert_eq!((st.unit_fields[1].name.as_str(), st.unit_fields[1].unit.as_str()), ("bytes_moved", "bytes"));
        assert_eq!(st.fns[0].unit.as_deref(), Some("accesses"));
        assert!(st.errors.is_empty(), "{:?}", st.errors);
        // Unknown units and unbound placements are syntax errors.
        assert!(matches!(parse_directive("// audit: unit(furlongs)"), Some(Err(_))));
        let st = analyze(&lex("// audit: unit(bytes)\nlet x = 1;"));
        assert_eq!(st.errors.len(), 1);
    }

    #[test]
    fn hash_bindings_found() {
        let src = "struct S { resident: HashMap<u64, u32, H> }\nfn f() { let mut seen = HashSet::new(); }";
        let st = analyze(&lex(src));
        assert!(st.hash_bindings.contains(&"resident".to_string()));
        assert!(st.hash_bindings.contains(&"seen".to_string()));
    }
}
