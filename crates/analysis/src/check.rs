//! The audit engine: applies the rule catalog to token streams and walks
//! the workspace.
//!
//! Since PR 10 the engine runs in **two passes**. Pass one lexes and
//! structures every file into a [`Workspace`] (symbol table inputs: fns
//! with their impl/trait owners, `// audit:` annotations, unit fields).
//! Pass two runs the rules:
//!
//! * per-file rules (`det-*`, `hot-panic`/`hot-alloc`/`hot-callee`,
//!   `struct-*`, `merge-commutative`) see one file at a time, exactly as
//!   the PR 5 engine did;
//! * workspace rules see the whole corpus: `unit-mismatch` resolves names
//!   against the global [`units::UnitTable`], `hot-transitive` walks the
//!   cross-crate [`CallGraph`] from the controller/channel roots, and
//!   `obs-counter-reconcile` matches crates/obs counters against every
//!   test region and reconciliation fn in the workspace.
//!
//! The layering keeps fixture tests filesystem-free:
//!
//! * [`check_source`] — audit one file's source text (a one-file
//!   workspace: every rule still runs, cross-file resolution simply has
//!   nothing else to see);
//! * [`check_ws`] — audit a pre-built [`Workspace`];
//! * [`check_workspace`] — collect the workspace's non-test sources (plus
//!   integration-test sources as reconciliation evidence) and audit them.

use crate::graph::{CallGraph, FnId, Workspace};
use crate::items::{FileStructure, FnItem};
use crate::lexer::{TokKind, Token};
use crate::rules::{self, CALLEE_SKIP};
use crate::units;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Catalog rule id.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<22} {}:{}: {}", self.rule, self.path, self.line, self.msg)
    }
}

/// Aggregated result of an audit run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Findings that survived `allow` filtering, in path/line order.
    pub findings: Vec<Finding>,
    /// Audited exceptions: (rule, path, line, reason) of every allow that
    /// suppressed at least one finding.
    pub exceptions: Vec<(String, String, u32, String)>,
    /// Total `allow` directives seen (used or not).
    pub allows_declared: usize,
    /// Number of `// audit: hot-path` fns audited.
    pub hot_fns: usize,
    /// Number of `// audit: merge` fns audited for commutativity.
    pub merge_fns: usize,
    /// Number of `// audit: unit(...)` annotations (fields + fns).
    pub unit_annotations: usize,
    /// Resolved call-graph edges in the workspace pass.
    pub call_edges: usize,
    /// Files examined.
    pub files: usize,
}

impl AuditReport {
    /// True when the audit found nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as a JSON document (the `--format json` /
    /// baseline interchange format; see `results/audit_baseline.json`).
    ///
    /// The schema is versioned and append-only: `version`, scalar counters,
    /// then `findings` and `exceptions` arrays in the same deterministic
    /// order the text renderer uses.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files\": {},\n", self.files));
        out.push_str(&format!("  \"hot_fns\": {},\n", self.hot_fns));
        out.push_str(&format!("  \"merge_fns\": {},\n", self.merge_fns));
        out.push_str(&format!("  \"unit_annotations\": {},\n", self.unit_annotations));
        out.push_str(&format!("  \"call_edges\": {},\n", self.call_edges));
        out.push_str(&format!("  \"allows_declared\": {},\n", self.allows_declared));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}",
                escape(f.rule),
                escape(&f.path),
                f.line,
                escape(&f.msg)
            ));
        }
        out.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"exceptions\": [");
        for (i, (rule, path, line, reason)) in self.exceptions.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                escape(rule),
                escape(path),
                line,
                escape(reason)
            ));
        }
        out.push_str(if self.exceptions.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Path-derived facts that change which rules apply to a file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Inside crates/obs — the one crate allowed to read wall clocks.
    pub in_obs: bool,
    /// One of the two audited parallelism modules (the engine's matrix
    /// executor and the set-shard worker pipeline) — the only places
    /// allowed to touch `std::thread`.
    pub threads_allowed: bool,
    /// Inside crates/core or crates/types — pub items must be documented.
    pub docs_required: bool,
    /// A crate root (src/lib.rs) — must carry the structure attributes.
    pub is_crate_root: bool,
}

impl FileClass {
    /// Classifies a repo-relative path.
    pub fn of(rel: &str) -> FileClass {
        let unix = rel.replace('\\', "/");
        FileClass {
            in_obs: unix.starts_with("crates/obs/"),
            threads_allowed: unix == "crates/sim/src/engine.rs"
                || unix == "crates/sim/src/shard.rs",
            docs_required: unix.starts_with("crates/core/src/")
                || unix.starts_with("crates/types/src/"),
            is_crate_root: unix.ends_with("src/lib.rs"),
        }
    }
}

/// Methods whose call on a hash binding means unordered iteration.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain", "into_keys", "into_values"];

/// Audits one file as a one-file workspace. `rel` is the repo-relative
/// path used in findings and for [`FileClass`] scoping. Every rule runs —
/// workspace rules simply see a corpus of one file.
pub fn check_source(rel: &str, src: &str) -> (Vec<Finding>, FileStructure) {
    let ws = Workspace::from_sources(vec![(rel.to_string(), src.to_string())]);
    let report = check_ws(&ws, &BTreeSet::new());
    let st = ws.files.into_iter().next().expect("one-file workspace").st;
    (report.findings, st)
}

/// The per-file rules: everything that needs only one file's tokens.
fn file_rules(rel: &str, toks: &[Token], st: &FileStructure, raw: &mut Vec<(usize, Finding)>) {
    let class = FileClass::of(rel);
    det_hashmap(rel, toks, st, raw);
    det_clock(rel, class, toks, st, raw);
    det_entropy(rel, toks, st, raw);
    det_unordered_iter(rel, toks, st, raw);
    det_thread(rel, class, toks, st, raw);
    hot_rules(rel, toks, st, raw);
    merge_commutative(rel, toks, st, raw);
    if class.is_crate_root {
        struct_attrs(rel, toks, raw);
    }
    if class.docs_required {
        struct_pub_docs(rel, toks, st, raw);
    }

    // Malformed directives and unknown rule ids in allows.
    for e in &st.errors {
        raw.push((usize::MAX, finding("audit-syntax", rel, e.line, e.msg.clone())));
    }
    for a in &st.allows {
        if !rules::is_known(&a.rule) {
            raw.push((
                usize::MAX,
                finding("audit-syntax", rel, a.line, format!("allow of unknown rule `{}`", a.rule)),
            ));
        }
    }
}

/// Audits a pre-built workspace: per-file rules, then the workspace rules
/// (`unit-mismatch`, `hot-transitive`, `obs-counter-reconcile`).
/// `aux_idents` is extra reconciliation evidence — idents from sources
/// outside the audited corpus (integration-test files).
pub fn check_ws(ws: &Workspace, aux_idents: &BTreeSet<String>) -> AuditReport {
    let mut report = AuditReport::default();
    let mut raw: Vec<Vec<(usize, Finding)>> = ws.files.iter().map(|_| Vec::new()).collect();

    let table = units::UnitTable::build(ws.files.iter().map(|f| &f.st));
    for (fi, file) in ws.files.iter().enumerate() {
        file_rules(&file.rel, &file.toks, &file.st, &mut raw[fi]);
        if units::in_scope(&file.rel) {
            units::scan(&file.rel, &file.toks, &file.st, &table, &mut raw[fi]);
        }
    }
    report.call_edges = hot_transitive(ws, &mut raw);
    obs_counter_reconcile(ws, aux_idents, &mut raw);

    for (fi, file) in ws.files.iter().enumerate() {
        let st = &file.st;
        report.files += 1;
        report.allows_declared += st.allows.len();
        report.hot_fns += st.fns.iter().filter(|f| f.hot && !f.in_test).count();
        report.merge_fns += st.fns.iter().filter(|f| f.merge && !f.in_test).count();
        report.unit_annotations +=
            st.unit_fields.len() + st.fns.iter().filter(|f| f.unit.is_some()).count();
        // An allow counts as an audited exception when declared with a
        // reason — the exception report is the list of declared, justified
        // deviations, which is what reviewers audit.
        for a in &st.allows {
            if rules::is_known(&a.rule) {
                report.exceptions.push((a.rule.clone(), file.rel.clone(), a.line, a.reason.clone()));
            }
        }
        // Apply allows (audit-syntax is not allowable by design).
        report.findings.extend(
            std::mem::take(&mut raw[fi])
                .into_iter()
                .filter(|(i, f)| f.rule == "audit-syntax" || !st.allowed(f.rule, f.line, *i))
                .map(|(_, f)| f),
        );
    }
    report.findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

fn finding(rule: &'static str, rel: &str, line: u32, msg: String) -> Finding {
    Finding { rule, path: rel.to_string(), line, msg }
}

/// Next non-comment token at or after `i`.
fn next_code(toks: &[Token], i: usize) -> Option<(usize, &Token)> {
    toks.iter().enumerate().skip(i).find(|(_, t)| !t.is_comment())
}

/// Previous non-comment token strictly before `i`.
fn prev_code(toks: &[Token], i: usize) -> Option<(usize, &Token)> {
    toks[..i].iter().enumerate().rev().find(|(_, t)| !t.is_comment())
}

fn det_hashmap(rel: &str, toks: &[Token], st: &FileStructure, out: &mut Vec<(usize, Finding)>) {
    let mut flagged_lines = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) || st.in_test(i) {
            continue;
        }
        let is_map = t.is_ident("HashMap");
        let Some((j, n1)) = next_code(toks, i + 1) else { continue };
        let hit = if n1.is_punct('<') {
            generic_args_missing_hasher(toks, j, is_map)
        } else if n1.is_punct(':') && toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            match next_code(toks, j + 2) {
                Some((k, n2)) if n2.is_punct('<') => generic_args_missing_hasher(toks, k, is_map),
                Some((_, n2)) => {
                    n2.is_ident("new") || n2.is_ident("default") || n2.is_ident("with_capacity")
                }
                None => false,
            }
        } else {
            false
        };
        if hit && !flagged_lines.contains(&t.line) {
            flagged_lines.push(t.line);
            out.push((
                i,
                finding(
                    "det-hashmap",
                    rel,
                    t.line,
                    format!(
                        "{} with the default RandomState hasher (use BTreeMap/BTreeSet or an explicit deterministic hasher)",
                        t.text
                    ),
                ),
            ));
        }
    }
}

/// At a `<` token: true when the balanced generic list has no hasher
/// parameter (fewer than 3 args for a map, 2 for a set).
fn generic_args_missing_hasher(toks: &[Token], open: usize, is_map: bool) -> bool {
    let mut angle = 0i64;
    let mut nest = 0i64; // (), [] nesting
    let mut commas = 0usize;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('-') && toks.get(j + 1).is_some_and(|t| t.is_punct('>')) {
            j += 2; // `->` in fn types
            continue;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
            if angle == 0 {
                break;
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest -= 1;
        } else if t.is_punct(',') && angle == 1 && nest == 0 {
            commas += 1;
        }
        j += 1;
    }
    commas < if is_map { 2 } else { 1 }
}

fn det_clock(
    rel: &str,
    class: FileClass,
    toks: &[Token],
    st: &FileStructure,
    out: &mut Vec<(usize, Finding)>,
) {
    if class.in_obs {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && !st.in_test(i)
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push((
                i,
                finding(
                    "det-clock",
                    rel,
                    t.line,
                    format!("{}::now() outside crates/obs", t.text),
                ),
            ));
        }
    }
}

fn det_entropy(rel: &str, toks: &[Token], st: &FileStructure, out: &mut Vec<(usize, Finding)>) {
    for (i, t) in toks.iter().enumerate() {
        if st.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        let hit = matches!(t.text.as_str(), "thread_rng" | "ThreadRng" | "from_entropy" | "getrandom" | "RandomState")
            || (t.is_ident("rand") && toks.get(i + 1).is_some_and(|t| t.is_punct(':')));
        if hit {
            out.push((
                i,
                finding(
                    "det-entropy",
                    rel,
                    t.line,
                    format!("ambient entropy source `{}` (derive from the cell's workload seed)", t.text),
                ),
            ));
        }
    }
}

fn det_unordered_iter(
    rel: &str,
    toks: &[Token],
    st: &FileStructure,
    out: &mut Vec<(usize, Finding)>,
) {
    if st.hash_bindings.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !st.hash_bindings.contains(&t.text) || st.in_test(i) {
            continue;
        }
        // `<binding>.iter()` and friends.
        let method = toks.get(i + 1).filter(|n| n.is_punct('.')).and_then(|_| toks.get(i + 2));
        let is_iter_call = method.is_some_and(|m| {
            ITER_METHODS.contains(&m.text.as_str())
                && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        });
        // `for x in <binding>` / `for x in &<binding>`.
        let in_loop = match prev_code(toks, i) {
            Some((_, p)) if p.is_ident("in") => true,
            Some((k, p)) if p.is_punct('&') => {
                matches!(prev_code(toks, k), Some((_, pp)) if pp.is_ident("in"))
            }
            _ => false,
        };
        if is_iter_call || in_loop {
            out.push((
                i,
                finding(
                    "det-unordered-iter",
                    rel,
                    t.line,
                    format!("iteration over hash-based collection `{}`", t.text),
                ),
            ));
        }
    }
}

fn det_thread(
    rel: &str,
    class: FileClass,
    toks: &[Token],
    st: &FileStructure,
    out: &mut Vec<(usize, Finding)>,
) {
    if class.threads_allowed {
        return;
    }
    let mut flagged_lines = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || st.in_test(i) {
            continue;
        }
        let path_to = |j: usize, name: &str| {
            toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_ident(name))
        };
        // `std::thread`, `thread::spawn`/`thread::scope`, and the
        // external thread-pool crates this workspace must not grow.
        let hit = if t.is_ident("std") && path_to(i + 1, "thread") {
            Some("std::thread")
        } else if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("spawn") || t.is_ident("scope"))
        {
            Some("thread::spawn/scope")
        } else if t.is_ident("rayon") || t.is_ident("crossbeam") {
            Some("thread-pool crate")
        } else {
            None
        };
        if let Some(what) = hit {
            if !flagged_lines.contains(&t.line) {
                flagged_lines.push(t.line);
                out.push((
                    i,
                    finding(
                        "det-thread",
                        rel,
                        t.line,
                        format!(
                            "{what} outside the engine/shard modules (route parallelism \
                             through the engine's cell executor or shard workers)"
                        ),
                    ),
                ));
            }
        }
    }
}

/// Runs `hot-panic`, `hot-alloc` and `hot-callee` over every annotated fn.
fn hot_rules(rel: &str, toks: &[Token], st: &FileStructure, out: &mut Vec<(usize, Finding)>) {
    for f in st.fns.iter().filter(|f| f.hot && !f.in_test) {
        let Some((start, end)) = f.body else { continue };
        hot_panic(rel, toks, start, end, out);
        hot_alloc(rel, toks, start, end, out);
        hot_callee(rel, toks, st, f, start, end, out);
    }
}

fn hot_panic(rel: &str, toks: &[Token], start: usize, end: usize, out: &mut Vec<(usize, Finding)>) {
    for i in start..=end.min(toks.len() - 1) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_macro = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq" | "assert_ne"
        ) && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let is_method = matches!(t.text.as_str(), "unwrap" | "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if is_macro || is_method {
            out.push((
                i,
                finding("hot-panic", rel, t.line, format!("`{}` in a hot-path fn", t.text)),
            ));
        }
    }
}

fn hot_alloc(rel: &str, toks: &[Token], start: usize, end: usize, out: &mut Vec<(usize, Finding)>) {
    // Locals bound to a growable empty Vec inside this fn.
    let mut growable: Vec<&str> = Vec::new();
    let mut i = start;
    while i <= end.min(toks.len() - 1) {
        let t = &toks[i];
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let (Some(name), Some(eq)) = (toks.get(j), toks.get(j + 1)) {
                if name.kind == TokKind::Ident
                    && eq.is_punct('=')
                    && (toks.get(j + 2).is_some_and(|t| t.is_ident("Vec"))
                        && toks.get(j + 5).is_some_and(|t| t.is_ident("new"))
                        || toks.get(j + 2).is_some_and(|t| t.is_ident("vec")))
                {
                    growable.push(&name.text);
                }
            }
        }
        i += 1;
    }
    for i in start..=end.min(toks.len() - 1) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |off: usize, c: char| toks.get(i + off).is_some_and(|t| t.is_punct(c));
        let mut hit: Option<String> = None;
        if (t.is_ident("vec") || t.is_ident("format")) && next_is(1, '!') {
            hit = Some(format!("`{}!` allocates", t.text));
        } else if (t.is_ident("Box") || t.is_ident("String"))
            && next_is(1, ':')
            && next_is(2, ':')
            && toks
                .get(i + 3)
                .is_some_and(|n| matches!(n.text.as_str(), "new" | "from" | "with_capacity"))
        {
            hit = Some(format!("`{}::{}` allocates", t.text, toks[i + 3].text));
        } else if i > 0
            && toks[i - 1].is_punct('.')
            && matches!(t.text.as_str(), "to_string" | "to_owned" | "to_vec" | "collect")
            && (next_is(1, '(') || next_is(1, ':'))
        {
            hit = Some(format!("`.{}()` allocates", t.text));
        } else if matches!(t.text.as_str(), "push" | "extend")
            && i > 1
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && growable.contains(&toks[i - 2].text.as_str())
            && next_is(1, '(')
        {
            hit = Some(format!(
                "`.{}` on `{}`, a Vec::new()-bound local (preallocate or reuse scratch)",
                t.text,
                toks[i - 2].text
            ));
        }
        if let Some(msg) = hit {
            out.push((i, finding("hot-alloc", rel, t.line, format!("{msg} in a hot-path fn"))));
        }
    }
}

fn hot_callee(
    rel: &str,
    toks: &[Token],
    st: &FileStructure,
    f: &FnItem,
    start: usize,
    end: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    for i in start..=end.min(toks.len() - 1) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Any same-file fn with this name; treat the call as audited when
        // at least one same-name fn is annotated (lexical ambiguity).
        let mut defined = false;
        let mut audited = false;
        for g in st.fns.iter().filter(|g| !g.in_test && g.name == t.text) {
            defined = true;
            audited |= g.hot;
        }
        if !defined || audited || t.text == f.name {
            continue;
        }
        let prev = prev_code(toks, i);
        let call = match prev {
            Some((_, p)) if p.is_ident("fn") => None, // a nested fn's own signature
            Some((k, p)) if p.is_punct('.') => {
                let receiver = prev_code(toks, k);
                // A `self.` receiver always resolves to this file's impl, so
                // even skip-listed ubiquitous names (push, clear, …) stay in
                // the closure — that is how ring-buffer samplers named like
                // std collections (`LatRing::push`) keep hot-* coverage.
                let own_method = matches!(&receiver, Some((_, r)) if r.is_ident("self"));
                // Likewise, when a same-file type defines a *method* with
                // this name, an unknown receiver is far more likely that
                // type than a std collection — skipping it was the PR 5
                // false negative that let `ring.push(…)` escape the
                // closure whenever the method shadowed a std name.
                let local_method =
                    st.fns.iter().any(|g| !g.in_test && g.name == t.text && g.owner.is_some());
                if CALLEE_SKIP.contains(&t.text.as_str()) && !own_method && !local_method {
                    None
                } else {
                    Some(match receiver {
                        Some((_, r)) if r.kind == TokKind::Ident => format!("{}.{}", r.text, t.text),
                        _ => format!(".{}", t.text),
                    })
                }
            }
            Some((k, p)) if p.is_punct(':') => {
                // `Self::name(` is a same-file path call; so is a
                // lowercase-qualified free-fn path (`crate::name(`,
                // `self::name(`, `module::name(`) — PR 5 dropped those
                // entirely, so shadow-named free fns reached through a
                // path (`crate::push(…)`) were never audited.
                match prev_code(toks, k).and_then(|(k2, _)| prev_code(toks, k2)) {
                    Some((_, r)) if r.is_ident("Self") => Some(format!("Self::{}", t.text)),
                    Some((_, r))
                        if r.kind == TokKind::Ident
                            && r.text.chars().next().is_some_and(|c| c.is_ascii_lowercase()) =>
                    {
                        Some(format!("{}::{}", r.text, t.text))
                    }
                    _ => None,
                }
            }
            _ => Some(t.text.clone()),
        };
        if let Some(callee) = call {
            out.push((
                i,
                finding(
                    "hot-callee",
                    rel,
                    t.line,
                    format!(
                        "hot-path fn `{}` calls `{}` which is defined in this file but not marked `// audit: hot-path`",
                        f.name, callee
                    ),
                ),
            ));
        }
    }
}

/// `merge-commutative`: fns annotated `// audit: merge` may only mutate
/// self state through order-insensitive operations.
fn merge_commutative(rel: &str, toks: &[Token], st: &FileStructure, out: &mut Vec<(usize, Finding)>) {
    for f in st.fns.iter().filter(|f| f.merge && !f.in_test) {
        let Some((start, end)) = f.body else { continue };
        let mut flag = |i: usize, msg: String| {
            out.push((i, finding("merge-commutative", rel, toks[i].line, msg)));
        };
        let mut i = start;
        while i <= end.min(toks.len() - 1) {
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    // Shard identity must be invisible to a merge: any
                    // outcome that depends on *which* shard a partial came
                    // from breaks the any-width byte-identity contract.
                    "shard" | "shard_id" | "shard_idx" | "sid" | "worker_id" => flag(
                        i,
                        format!("merge fn `{}` references shard identity `{}`", f.name, t.text),
                    ),
                    // Hash-ordered containers make the merge's visitation
                    // order nondeterministic even when each step commutes.
                    "HashMap" | "HashSet" => flag(
                        i,
                        format!("merge fn `{}` touches hash-ordered `{}`", f.name, t.text),
                    ),
                    // Explicit order comparison between partials is the
                    // classic non-commutative merge bug.
                    "Ordering" => flag(
                        i,
                        format!("merge fn `{}` branches on an `Ordering`", f.name),
                    ),
                    "cmp" | "partial_cmp"
                        if i > 0
                            && toks[i - 1].is_punct('.')
                            && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                    {
                        flag(i, format!("merge fn `{}` compares merge operands with `.{}`", f.name, t.text))
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            // Compound assigns: only the commutative-monoid set is
            // admissible in a merge (`+=`, `|=`).
            if let Some((op, w)) = compound_assign(toks, i) {
                if !matches!(op, "+=" | "|=") {
                    flag(i, format!("merge fn `{}` uses non-commutative `{op}`", f.name));
                }
                i += w;
                continue;
            }
            // A plain `=` overwriting a self field is last-writer-wins —
            // order-dependent — unless it is a self-referential fold
            // through max/min/saturating_add (`self.f = self.f.max(…)`).
            if plain_assign(toks, i) && assign_target_is_self(toks, start, i) {
                let folds = {
                    let rhs_ok = next_code(toks, i + 1).is_some_and(|(_, t)| t.is_ident("self"));
                    let mut fold = false;
                    let mut j = i + 1;
                    while j <= end.min(toks.len() - 1) && !toks[j].is_punct(';') {
                        if matches!(toks[j].text.as_str(), "max" | "min")
                            || toks[j].text.starts_with("saturating_")
                        {
                            fold = true;
                        }
                        j += 1;
                    }
                    rhs_ok && fold
                };
                if !folds {
                    flag(
                        i,
                        format!(
                            "merge fn `{}` overwrites a self field with `=` (use `+=`, `|=`, or a \
                             `self.f = self.f.max/min/saturating_*` fold)",
                            f.name
                        ),
                    );
                }
            }
            i += 1;
        }
    }
}

/// At token `i`: `Some((op, width))` when a compound-assign operator
/// starts here (`+=`, `-=`, `*=`, `/=`, `%=`, `&=`, `|=`, `^=`, `<<=`,
/// `>>=`).
fn compound_assign(toks: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let c = toks[i].text.chars().next()?;
    if toks[i].kind != TokKind::Punct {
        return None;
    }
    let p = |k: usize, c: char| toks.get(i + k).is_some_and(|t| t.is_punct(c));
    match c {
        '+' if p(1, '=') => Some(("+=", 2)),
        '-' if p(1, '=') => Some(("-=", 2)),
        '*' if p(1, '=') => Some(("*=", 2)),
        '/' if p(1, '=') => Some(("/=", 2)),
        '%' if p(1, '=') => Some(("%=", 2)),
        '&' if p(1, '=') => Some(("&=", 2)),
        '|' if p(1, '=') => Some(("|=", 2)),
        '^' if p(1, '=') => Some(("^=", 2)),
        '<' if p(1, '<') && p(2, '=') => Some(("<<=", 3)),
        '>' if p(1, '>') && p(2, '=') => Some((">>=", 3)),
        _ => None,
    }
}

/// At token `i`: a standalone assignment `=` (not `==`, `<=`, `=>`, or
/// the tail of a compound assign).
fn plain_assign(toks: &[Token], i: usize) -> bool {
    if !toks[i].is_punct('=') {
        return false;
    }
    if toks.get(i + 1).is_some_and(|n| n.is_punct('=') || n.is_punct('>')) {
        return false;
    }
    !toks
        .get(i.wrapping_sub(1))
        .is_some_and(|p| "+-*/%&|^<>=!".chars().any(|c| p.is_punct(c)))
}

/// Walks the assignment target ending just before `=` at token `i` back
/// to its chain head (`self.nodes[k].calls` → `self`); true when the
/// head is `self` — i.e. the assignment mutates persistent merge state.
fn assign_target_is_self(toks: &[Token], start: usize, i: usize) -> bool {
    let Some((mut j, _)) = prev_code(toks, i) else { return false };
    loop {
        if j <= start {
            return toks[j].is_ident("self");
        }
        let t = &toks[j];
        if t.is_punct(']') {
            // Balance back over the index expression.
            let mut depth = 0i64;
            while j > start {
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            match prev_code(toks, j) {
                Some((k, _)) => j = k,
                None => return false,
            }
        } else if t.kind == TokKind::Ident {
            match prev_code(toks, j) {
                Some((k, p)) if p.is_punct('.') => match prev_code(toks, k) {
                    Some((k2, _)) => j = k2,
                    None => return false,
                },
                _ => return t.is_ident("self"),
            }
        } else {
            return false;
        }
    }
}

/// `hot-transitive`: BFS the call graph from the controller/channel roots
/// and flag every reachable fn that is neither annotated hot-path nor
/// covered by an `allow(hot-transitive)` cold boundary. Returns the
/// resolved edge count for the report summary.
fn hot_transitive(ws: &Workspace, raw: &mut [Vec<(usize, Finding)>]) -> usize {
    let g = CallGraph::build(ws);
    let roots = g.roots(ws);
    let allowed = |id: FnId| {
        let file = &ws.files[id.file];
        let f = &file.st.fns[id.idx];
        let tok = f.body.map_or(usize::MAX, |(s, _)| s);
        file.st.allowed("hot-transitive", f.line, tok)
    };
    let qual = |id: FnId| {
        let f = &ws.files[id.file].st.fns[id.idx];
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    };
    // An allow(hot-transitive) is a declared cold boundary: the fn itself
    // is excused *and* the walk does not descend into its callees.
    let reach = g.reachable(&roots, |id| !allowed(id));
    for (&id, &from) in &reach {
        if allowed(id) {
            continue;
        }
        let f = &ws.files[id.file].st.fns[id.idx];
        // Bodiless fns (trait method signatures) have no code to audit —
        // the impls they fan out to are the auditable surface.
        if f.hot || f.body.is_none() {
            continue;
        }
        let msg = if id == from {
            format!("hot root `{}` is not marked `// audit: hot-path`", qual(id))
        } else {
            format!(
                "`{}` is reachable from a hot root via `{}` ({}) but not marked \
                 `// audit: hot-path`",
                qual(id),
                qual(from),
                ws.files[from.file].rel
            )
        };
        let rel = ws.files[id.file].rel.clone();
        raw[id.file].push((f.tok, Finding { rule: "hot-transitive", path: rel, line: f.line, msg }));
    }
    g.edge_count
}

/// `obs-counter-reconcile`: every pub integer counter declared in
/// crates/obs must be named by at least one reconciliation context — a
/// `#[cfg(test)]` region anywhere, the body of a fn whose name signals an
/// invariant (`reconcile`/`invariant`/`validate`/`verify`/`check`), or an
/// integration-test file (`aux_idents`).
fn obs_counter_reconcile(ws: &Workspace, aux_idents: &BTreeSet<String>, raw: &mut [Vec<(usize, Finding)>]) {
    let mut evidence: BTreeSet<&str> = aux_idents.iter().map(String::as_str).collect();
    for file in &ws.files {
        for &(a, b) in &file.st.test_regions {
            for t in &file.toks[a..=b.min(file.toks.len() - 1)] {
                if t.kind == TokKind::Ident {
                    evidence.insert(&t.text);
                }
            }
        }
        for f in &file.st.fns {
            let reconciles = ["reconcile", "invariant", "validate", "verify", "check"]
                .iter()
                .any(|k| f.name.contains(k));
            if !reconciles || f.in_test {
                continue;
            }
            let Some((s, e)) = f.body else { continue };
            for t in &file.toks[s..=e.min(file.toks.len() - 1)] {
                if t.kind == TokKind::Ident {
                    evidence.insert(&t.text);
                }
            }
        }
    }
    for (fi, file) in ws.files.iter().enumerate() {
        if !file.rel.starts_with("crates/obs/") {
            continue;
        }
        for (i, name, line) in pub_int_fields(&file.toks, &file.st) {
            if !evidence.contains(name.as_str()) {
                raw[fi].push((
                    i,
                    finding(
                        "obs-counter-reconcile",
                        &file.rel,
                        line,
                        format!(
                            "pub counter `{name}` appears in no reconciliation invariant or test \
                             (add it to a reconcile/invariant fn or a test, or allow with a reason)"
                        ),
                    ),
                ));
            }
        }
    }
}

/// Pub integer (or integer-array) fields outside test regions:
/// `(token index, field name, line)`.
fn pub_int_fields(toks: &[Token], st: &FileStructure) -> Vec<(usize, String, u32)> {
    const INT: &[&str] =
        &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") || st.in_test(i) {
            continue;
        }
        let Some((j, name)) = next_code(toks, i + 1) else { continue };
        if name.kind != TokKind::Ident {
            continue; // pub(crate) and friends
        }
        let Some((k, colon)) = next_code(toks, j + 1) else { continue };
        if !colon.is_punct(':') || toks.get(k + 1).is_some_and(|t| t.is_punct(':')) {
            continue; // not a field, or a `::` path
        }
        let Some((m, ty)) = next_code(toks, k + 1) else { continue };
        let is_int = INT.contains(&ty.text.as_str())
            || (ty.is_punct('[')
                && next_code(toks, m + 1).is_some_and(|(_, t)| INT.contains(&t.text.as_str())));
        if is_int {
            out.push((i, name.text.clone(), name.line));
        }
    }
    out
}

/// Looks for `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` in a
/// crate root's leading tokens.
fn struct_attrs(rel: &str, toks: &[Token], out: &mut Vec<(usize, Finding)>) {
    let has = |lint: &str, levels: &[&str]| {
        toks.windows(6).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && levels.iter().any(|l| w[3].is_ident(l))
                && w[4].is_punct('(')
                && w[5].is_ident(lint)
        })
    };
    if !has("unsafe_code", &["forbid"]) {
        out.push((
            usize::MAX,
            finding("struct-attrs", rel, 1, "crate root missing #![forbid(unsafe_code)]".into()),
        ));
    }
    if !has("missing_docs", &["deny", "forbid"]) {
        let msg = if has("missing_docs", &["allow"]) {
            "crate root allows missing_docs — requires `// audit: allow(struct-attrs) -- <reason>`"
        } else {
            "crate root missing #![deny(missing_docs)]"
        };
        out.push((usize::MAX, finding("struct-attrs", rel, 1, msg.into())));
    }
}

fn struct_pub_docs(rel: &str, toks: &[Token], st: &FileStructure, out: &mut Vec<(usize, Finding)>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") || st.in_test(i) {
            continue;
        }
        // Item position: start of file or after `{` `}` `;` `,` `(` or `]`.
        match prev_code(toks, i) {
            None => {}
            Some((_, p))
                if p.is_punct('{') || p.is_punct('}') || p.is_punct(';') || p.is_punct(',')
                    || p.is_punct('(') || p.is_punct(']') => {}
            _ => continue,
        }
        let Some((j, n)) = next_code(toks, i + 1) else { continue };
        if n.is_punct('(') {
            continue; // pub(crate) / pub(super): not public API
        }
        // What kind of item follows?
        let (kind, name) = if matches!(
            n.text.as_str(),
            "fn" | "struct" | "enum" | "trait" | "mod" | "const" | "static" | "type" | "union"
        ) {
            let name = next_code(toks, j + 1)
                .map(|(_, t)| t.text.clone())
                .unwrap_or_default();
            // `pub mod x;` declarations are documented by the module
            // file's own `//!` inner docs — rustc accepts that, so do we.
            if n.is_ident("mod")
                && next_code(toks, j + 1)
                    .and_then(|(k, _)| next_code(toks, k + 1))
                    .is_some_and(|(_, t)| t.is_punct(';'))
            {
                continue;
            }
            (n.text.clone(), name)
        } else if n.is_ident("use") {
            continue; // re-exports need no docs
        } else if n.kind == TokKind::Ident
            && next_code(toks, j + 1).is_some_and(|(_, c)| c.is_punct(':'))
        {
            ("field".to_string(), n.text.clone())
        } else {
            continue;
        };
        if !documented(toks, i) {
            out.push((
                i,
                finding(
                    "struct-pub-docs",
                    rel,
                    t.line,
                    format!("undocumented pub {kind} `{name}`"),
                ),
            ));
        }
    }
}

/// Walks backwards from the `pub` at token `i` over attributes looking for
/// a doc comment or `#[doc…]`.
fn documented(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokKind::LineComment {
            if t.text.starts_with("///") || t.text.starts_with("//!") {
                return true;
            }
            // Ordinary comments (incl. audit directives) are transparent.
        } else if t.kind == TokKind::BlockComment {
            if t.text.starts_with("/**") || t.text.starts_with("/*!") {
                return true;
            }
        } else if t.is_punct(']') {
            // Skip the attribute backwards to its `#`.
            let mut depth = 0i64;
            while j > 0 {
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident("doc") && depth == 1 {
                    return true; // #[doc = …] / #[doc(hidden)]
                }
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_punct('#') {
                j -= 1;
            }
        } else {
            return false;
        }
    }
    false
}

/// Collects the workspace source files under `root` that the audit covers:
/// the facade `src/lib.rs` plus everything under `crates/*/src`, skipping
/// `tests/`, `benches/`, `examples/`, `fixtures/` and `target/`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let facade = root.join("src/lib.rs");
    if facade.is_file() {
        files.push(facade);
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> =
            std::fs::read_dir(&crates)?.filter_map(Result::ok).map(|e| e.path()).collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if !matches!(name, "tests" | "benches" | "examples" | "fixtures" | "target") {
                collect_rs(&p, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Collects the workspace's integration-test sources (`crates/*/tests`,
/// root `tests/`) — not audited themselves, but their idents count as
/// reconciliation evidence for `obs-counter-reconcile`.
pub fn aux_test_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("tests")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> =
            std::fs::read_dir(&crates)?.filter_map(Result::ok).map(|e| e.path()).collect();
        members.sort();
        dirs.extend(members.into_iter().map(|m| m.join("tests")));
    }
    for d in dirs {
        if d.is_dir() {
            collect_rs(&d, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Audits every workspace file under `root` and aggregates the report.
/// Integration-test files are read as reconciliation evidence only.
pub fn check_workspace(root: &Path) -> std::io::Result<AuditReport> {
    let mut aux = BTreeSet::new();
    for path in aux_test_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        aux.extend(
            crate::lexer::lex(&src)
                .into_iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text),
        );
    }
    let report = check_files_with_aux(root, &workspace_files(root)?, &aux)?;
    Ok(report)
}

/// Audits an explicit file list (paths are made repo-relative to `root`
/// for classification and reporting when possible). The list is audited
/// as one workspace, so cross-file rules resolve within it.
pub fn check_files(root: &Path, files: &[PathBuf]) -> std::io::Result<AuditReport> {
    check_files_with_aux(root, files, &BTreeSet::new())
}

fn check_files_with_aux(
    root: &Path,
    files: &[PathBuf],
    aux_idents: &BTreeSet<String>,
) -> std::io::Result<AuditReport> {
    let mut sources = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(path)?));
    }
    Ok(check_ws(&Workspace::from_sources(sources), aux_idents))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_source(rel, src).0.into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn hashmap_default_hasher_flagged_with_hasher_ok() {
        let hits = rules_hit("crates/sim/src/x.rs", "fn f() { let m = HashMap::new(); }");
        assert_eq!(hits, vec![("det-hashmap", 1)]);
        let ok = rules_hit(
            "crates/sim/src/x.rs",
            "struct S { m: HashMap<u64, u32, BuildHasherDefault<H>> }",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let ty = rules_hit("crates/sim/src/x.rs", "struct S { m: HashMap<(String, u8), u32> }");
        assert_eq!(ty, vec![("det-hashmap", 1)]);
    }

    #[test]
    fn clock_scoped_to_obs() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_hit("crates/sim/src/e.rs", src), vec![("det-clock", 1)]);
        assert!(rules_hit("crates/obs/src/span.rs", src).is_empty());
    }

    #[test]
    fn allow_suppresses_and_is_reported() {
        let src = "fn f() { let t = Instant::now(); } // audit: allow(det-clock) -- telemetry only\n";
        let (findings, st) = check_source("crates/sim/src/e.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(st.allows.len(), 1);
    }

    #[test]
    fn thread_primitives_scoped_to_engine_and_shard() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_hit("crates/core/src/x.rs", spawn), vec![("det-thread", 1)]);
        let scope = "use std::thread;\nfn f() { thread::scope(|s| {}); }";
        assert_eq!(
            rules_hit("crates/trace/src/x.rs", scope),
            vec![("det-thread", 1), ("det-thread", 2)]
        );
        // The two audited parallelism modules are exempt.
        assert!(rules_hit("crates/sim/src/engine.rs", spawn).is_empty());
        assert!(rules_hit("crates/sim/src/shard.rs", scope).is_empty());
        // Thread-pool crates are flagged anywhere.
        let pool = "fn f() { rayon::join(|| {}, || {}); }";
        assert_eq!(rules_hit("crates/sim/src/other.rs", pool), vec![("det-thread", 1)]);
        // Tests may thread freely.
        let test = "#[cfg(test)]\nmod tests {\n  fn f() { std::thread::spawn(|| {}); }\n}";
        assert!(rules_hit("crates/core/src/x.rs", test).is_empty());
        // An allow with a reason suppresses and is recorded.
        let allowed =
            "fn f() { std::thread::spawn(|| {}); } // audit: allow(det-thread) -- one-shot helper\n";
        let (findings, st) = check_source("crates/core/src/x.rs", allowed);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(st.allows.len(), 1);
    }

    #[test]
    fn hot_rules_only_fire_in_annotated_fns() {
        let cold = "fn f() { x.unwrap(); }";
        assert!(rules_hit("crates/core/src/x.rs", cold).is_empty());
        let hot = "// audit: hot-path\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_hit("crates/core/src/x.rs", hot), vec![("hot-panic", 2)]);
    }

    #[test]
    fn hot_callee_closure() {
        let src = "\
// audit: hot-path
fn fast(&self) { self.helper(); }
fn helper(&self) {}
";
        let hits = rules_hit("crates/core/src/x.rs", src);
        assert_eq!(hits, vec![("hot-callee", 2)]);
        let fixed = src.replace("fn helper", "// audit: hot-path\nfn helper");
        assert!(rules_hit("crates/core/src/x.rs", &fixed).is_empty());
    }

    #[test]
    fn struct_attrs_on_roots_only() {
        let bare = "//! Docs.\npub fn x() {}";
        assert!(rules_hit("crates/foo/src/other.rs", bare)
            .iter()
            .all(|(r, _)| *r != "struct-attrs"));
        let hits = rules_hit("crates/foo/src/lib.rs", bare);
        assert_eq!(hits.iter().filter(|(r, _)| *r == "struct-attrs").count(), 2);
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn x() {}";
        assert!(rules_hit("crates/foo/src/lib.rs", good).is_empty());
    }

    #[test]
    fn pub_docs_scoped_to_core_and_types() {
        let src = "pub fn naked() {}";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec![("struct-pub-docs", 1)]);
        assert!(rules_hit("crates/sim/src/x.rs", src).is_empty());
        let ok = "/// Documented.\npub fn fine() {}";
        assert!(rules_hit("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { let m = std::collections::HashMap::new(); }\n}";
        assert!(rules_hit("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn malformed_directive_is_a_finding() {
        let hits = rules_hit("crates/sim/src/x.rs", "// audit: allow(det-clock)\nfn f() {}");
        assert_eq!(hits, vec![("audit-syntax", 1)]);
    }
}
