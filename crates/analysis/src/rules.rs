//! The audit rule catalog: stable ids, one-line summaries and the long
//! explanations behind `audit_tool explain <rule>`.
//!
//! Rules come in three families mirroring the failure modes that matter to
//! this workspace (see DESIGN.md "Static analysis & checked builds"):
//!
//! * `det-*` — determinism: anything that could make two runs of the same
//!   experiment matrix produce different JSONL bytes;
//! * `hot-*` — hot-path hygiene: panics and heap allocation in functions
//!   annotated `// audit: hot-path` (the controller access flow);
//! * `struct-*` — structural conventions every crate must carry.

/// Common std method names never treated as resolvable callees when the
/// receiver is unknown (`recv.name(…)` / chained calls): the receiver is
/// usually a std type, and the false-positive cost of matching them
/// outweighs the closure coverage. Free-fn calls, `self.`-receiver calls
/// and explicit `Type::name(…)` paths are never skip-listed — they
/// resolve unambiguously to workspace items.
pub const CALLEE_SKIP: &[&str] = &[
    "new", "len", "is_empty", "push", "pop", "insert", "remove", "get", "get_mut", "clear",
    "iter", "iter_mut", "next", "clone", "min", "max", "clamp", "map", "and_then", "unwrap_or",
    "unwrap_or_else", "take", "replace", "swap", "from", "into", "fmt", "eq", "cmp", "hash",
    "drop", "default", "as_ref", "as_mut", "as_deref_mut", "contains", "count", "sum", "extend",
];

/// One rule in the catalog.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id used in findings, `allow(...)` directives and the CLI.
    pub id: &'static str,
    /// One-line summary for `list-rules`.
    pub summary: &'static str,
    /// Long-form explanation for `explain <rule>`.
    pub explain: &'static str,
}

/// The full catalog, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "det-hashmap",
        summary: "std HashMap/HashSet with the default RandomState hasher",
        explain: "\
std::collections::HashMap and HashSet default to RandomState, which is\n\
seeded from OS entropy per process: iteration order — and therefore any\n\
output derived from it — varies run to run. In a simulator whose tier-1\n\
contract is bit-identical JSONL at any --jobs width, that is a latent\n\
nondeterminism bug even when today's call sites never iterate.\n\
\n\
Flagged: `HashMap::new`, `HashSet::default`, `with_capacity`, and any\n\
`HashMap<K, V>` / `HashSet<T>` type with no explicit hasher parameter.\n\
Not flagged: maps with a named hasher (e.g. `BuildHasherDefault<...>`)\n\
and `with_hasher` / `with_capacity_and_hasher` constructors.\n\
\n\
Fix: use BTreeMap/BTreeSet (deterministic order), a fixed-seed hasher,\n\
or justify with `// audit: allow(det-hashmap) -- <reason>`.",
    },
    Rule {
        id: "det-clock",
        summary: "Instant::now/SystemTime::now outside crates/obs",
        explain: "\
Wall-clock reads are inherently nondeterministic. All timing telemetry\n\
is supposed to flow through crates/obs (span profiler, engine telemetry)\n\
where it is kept out of the deterministic result fields; a clock read\n\
anywhere else tends to leak into output or, worse, into control flow.\n\
\n\
Flagged: `Instant::now` and `SystemTime::now` in any crate other than\n\
crates/obs. Wall-time measurement sites that only feed telemetry fields\n\
excluded from determinism diffs carry\n\
`// audit: allow(det-clock) -- <reason>`.",
    },
    Rule {
        id: "det-entropy",
        summary: "ambient entropy sources (thread_rng, RandomState, getrandom)",
        explain: "\
The workspace's only legitimate randomness is the in-repo SplitMix64\n\
stream, seeded deterministically per experiment cell. Ambient entropy —\n\
`thread_rng`, `ThreadRng`, `from_entropy`, `getrandom`, an explicit\n\
`RandomState` — reintroduces run-to-run variation that the engine's\n\
byte-identical contract cannot tolerate.\n\
\n\
Fix: derive randomness from the cell's workload seed (see\n\
crates/trace/src/rng.rs).",
    },
    Rule {
        id: "det-unordered-iter",
        summary: "iteration over a hash-based collection",
        explain: "\
Even with a deterministic hasher, hash-map iteration order is an\n\
implementation detail of capacity and insertion history — it is not a\n\
stable contract, and it changes across std versions. Any loop over a\n\
HashMap/HashSet that feeds JSONL output, stats, or control flow is a\n\
reproducibility hazard.\n\
\n\
Flagged: `.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`,\n\
`.into_iter()` and `for … in <binding>` where <binding> was lexically\n\
bound to a HashMap/HashSet in the same file.\n\
\n\
Fix: iterate a BTreeMap, sort the keys first, or — for order-insensitive\n\
reductions like sums — justify with\n\
`// audit: allow(det-unordered-iter) -- <reason>`.",
    },
    Rule {
        id: "det-thread",
        summary: "thread::spawn/std::thread outside the engine and shard modules",
        explain: "\
All parallelism in this workspace flows through two audited modules:\n\
crates/sim/src/engine.rs (the shared-cursor matrix executor behind\n\
--jobs) and crates/sim/src/shard.rs (the set-sharded worker pipeline\n\
behind --shards). Both were designed so that thread scheduling cannot\n\
reach the output: cells land in a slot-indexed result vector, shard\n\
partials merge in deterministic set order. A thread spawned anywhere\n\
else has no such merge discipline — whatever it computes reaches the\n\
results in completion order, which varies run to run and silently\n\
breaks the byte-identical JSONL contract.\n\
\n\
Flagged outside those two files: `thread::spawn`, any `std::thread`\n\
path (scope, spawn, available_parallelism via the module), and\n\
`rayon`/`crossbeam` idents. Not flagged: `#[cfg(test)]` code.\n\
\n\
Fix: express the parallelism as engine cells or shard workers so the\n\
existing merge discipline applies, or justify with\n\
`// audit: allow(det-thread) -- <reason>`.",
    },
    Rule {
        id: "hot-panic",
        summary: "panic/unwrap/expect/assert in an audited hot-path fn",
        explain: "\
Functions annotated `// audit: hot-path` form the per-access controller\n\
flow (Controller::access, Channel::service, the baseline controllers and\n\
everything they call). A panic there takes down the whole experiment\n\
engine mid-matrix, and `unwrap`/`expect` hide invariant assumptions the\n\
checked build mode should be verifying instead.\n\
\n\
Flagged inside hot fns: `panic!`, `unreachable!`, `todo!`,\n\
`unimplemented!`, `assert!`/`assert_eq!`/`assert_ne!`, `.unwrap()`,\n\
`.expect()`. Not flagged: `debug_assert*` (compiled out in release) and\n\
anything under `#[cfg(test)]`.\n\
\n\
Fix: restructure so the invariant is a typed impossibility, move the\n\
check into the `checked` feature's invariant sweep, or justify with\n\
`// audit: allow(hot-panic) -- <reason>`.",
    },
    Rule {
        id: "hot-alloc",
        summary: "heap allocation in an audited hot-path fn",
        explain: "\
The PR-4 O(1) overhaul made the steady-state access path allocation\n\
free: all per-set metadata lives in fixed boxed slices sized at\n\
construction, and scratch vectors retain capacity across calls. A stray\n\
`format!` or `Box::new` in the access flow quietly costs more than most\n\
algorithmic regressions.\n\
\n\
Flagged inside hot fns: `Box::new`, `vec![…]`, `format!`,\n\
`String::new`/`String::from`, `.to_string()`, `.to_owned()`,\n\
`.to_vec()`, `.collect()`, and `.push(…)`/`.extend(…)` on a local that\n\
was bound to `Vec::new()` in the same fn (pushes to preallocated,\n\
capacity-retaining buffers are fine and are not flagged).\n\
\n\
Fix: preallocate at construction, reuse scratch buffers, or justify\n\
with `// audit: allow(hot-alloc) -- <reason>`.",
    },
    Rule {
        id: "hot-callee",
        summary: "hot-path fn calls a same-file fn not marked hot-path",
        explain: "\
`// audit: hot-path` coverage is only as good as its transitive\n\
closure. This rule keeps the closure honest within a file: a call from\n\
an audited fn to a fn defined in the same file that is not itself\n\
annotated is flagged, so helpers on the access flow cannot silently\n\
escape the hot-* rules.\n\
\n\
Matched call shapes: `name(…)`, `self.name(…)`, `recv.name(…)` and\n\
`Self::name(…)` where `name` is a fn defined in the same file. A small\n\
list of ubiquitous std method names (len, push, get, iter, …) is\n\
skipped to avoid false positives on std receivers — except on a `self.`\n\
receiver, which always resolves to this file's impl, so hot-path ring\n\
buffers and samplers whose methods shadow std names (`push`, `clear`)\n\
stay inside the closure. Cross-file calls are out of scope (annotate\n\
the callee in its own file).\n\
\n\
Fix: annotate the callee `// audit: hot-path`, or justify the edge with\n\
`// audit: allow(hot-callee) -- <reason>` (e.g. a cold error branch).",
    },
    Rule {
        id: "hot-transitive",
        summary: "fn reachable from a controller/channel root lacks hot-path",
        explain: "\
The workspace pass builds a cross-crate call graph (free calls, `self.`\n\
and `Self::` methods, `Type::name` paths, and receiver-typed method\n\
calls resolved against every impl whose type or trait is named in the\n\
caller's file) and walks it from the audited hot roots: every\n\
`access`/`access_batch` on a controller — any `impl` whose type name\n\
contains `Controller` or that implements `HybridMemoryController` — and\n\
`Channel::schedule`. Unlike `hot-callee`, which keeps the closure honest\n\
one file at a time, this rule checks the *true* transitive closure: any\n\
fn reachable from a root that is not annotated `// audit: hot-path` is\n\
flagged at its definition site, with the edge it was reached through.\n\
\n\
The walk is cycle-tolerant (recursive controller helpers terminate) and\n\
respects declared cold boundaries: a fn carrying\n\
`// audit: allow(hot-transitive) -- <reason>` is excused and the walk\n\
does not descend into its callees — use it for genuinely cold exits\n\
from the access flow (epoch rollover, trace finalization, error paths).\n\
\n\
Fix: annotate the fn `// audit: hot-path` (subjecting it to hot-panic /\n\
hot-alloc / hot-callee), or declare the cold boundary with an allow.",
    },
    Rule {
        id: "merge-commutative",
        summary: "shard-merge fn uses an order-dependent operation",
        explain: "\
Fns annotated `// audit: merge` fold one shard's partial state into\n\
another (CtrlStats::merge, EpochPartial::absorb, TrafficMatrix::merge,\n\
merge_shard_records, …). The engine merges shard partials in set order,\n\
but the byte-identity contract at any `--shards` width additionally\n\
requires every merge step to be commutative and associative — then the\n\
fold's result is independent of how work was sharded in the first\n\
place.\n\
\n\
Flagged inside merge fns: non-commutative compound assigns (`-=`, `*=`,\n\
`/=`, `%=`, `&=`, `^=`, shifts); a plain `=` overwriting a `self` field\n\
(last-writer-wins) unless it is a self-referential fold through\n\
`max`/`min`/`saturating_*`; any reference to shard identity\n\
(`shard_id`, `worker_id`, …); hash-ordered containers\n\
(HashMap/HashSet); and order comparison between operands (`Ordering`,\n\
`.cmp()`, `.partial_cmp()`). Sorting *local* accumulators by a\n\
deterministic key (`sort_by_key(|r| r.seq)`) is fine — it canonicalizes\n\
order rather than depending on it.\n\
\n\
Fix: express the merge as `+=`/`|=` folds and max/min/saturating\n\
updates, or justify with `// audit: allow(merge-commutative) -- <reason>`.",
    },
    Rule {
        id: "unit-mismatch",
        summary: "arithmetic mixes annotated cycle/byte/access/ns domains",
        explain: "\
The simulator keeps four integer domains in bare u64 fields: `cycles`\n\
(simulated DRAM time), `bytes` (traffic), `accesses` (event counts) and\n\
`ns` (wall-clock profiler time). `// audit: unit(<domain>)` annotations\n\
on fields and fns put their *names* in a workspace-wide unit table;\n\
this rule then flags `+`, `-`, compound adds and comparisons whose two\n\
operands resolve to different annotated domains — adding bytes to\n\
cycles, or comparing span wall-ns against sim cycles — in crates/core,\n\
crates/dram, crates/obs and crates/sim.\n\
\n\
The model is name-keyed and lexical: operands resolve through field\n\
chains (`self.bw.cycles` → `cycles`), calls (`total_bytes()` →\n\
`total_bytes`) and indexing; numeric literals and unannotated names\n\
never flag. A name annotated with *conflicting* units in different\n\
files is dropped from the table entirely. Multiplication, division and\n\
shifts are never checked — they legitimately change units\n\
(bytes/cycle, cycles×width).\n\
\n\
Fix: convert explicitly in a named helper so the result carries the\n\
right annotation, or justify with\n\
`// audit: allow(unit-mismatch) -- <reason>`.",
    },
    Rule {
        id: "obs-counter-reconcile",
        summary: "pub counter in crates/obs outside every reconciliation check",
        explain: "\
The paper's traffic taxonomy (§III-E) is only trustworthy because the\n\
cause-attributed counters are *reconciled*: class-byte sums must equal\n\
device byte totals exactly, latency-component sums must equal total\n\
latency, epoch partials must sum to the sequential run. This rule makes\n\
that a closed system: every pub integer field declared in crates/obs\n\
must be named by at least one reconciliation context — a #[cfg(test)]\n\
region anywhere in the workspace, an integration-test file, or the body\n\
of a fn whose name contains reconcile/invariant/validate/verify/check.\n\
A counter no check ever reads is a counter whose drift nobody notices.\n\
\n\
Fix: extend a reconciliation invariant or test to cover the counter, or\n\
justify with `// audit: allow(obs-counter-reconcile) -- <reason>` on\n\
the field's line.",
    },
    Rule {
        id: "struct-attrs",
        summary: "crate root missing #![forbid(unsafe_code)] / #![deny(missing_docs)]",
        explain: "\
Every crate root (src/lib.rs) must carry `#![forbid(unsafe_code)]` and\n\
`#![deny(missing_docs)]`. The first makes the no-unsafe policy\n\
machine-checked forever; the second keeps rustc enforcing API docs so\n\
this tool only has to double-check. A crate that genuinely cannot deny\n\
missing_docs may carry `#![allow(missing_docs)]` plus\n\
`// audit: allow(struct-attrs) -- <reason>` at the top of the root.",
    },
    Rule {
        id: "struct-pub-docs",
        summary: "undocumented pub item in crates/core or crates/types",
        explain: "\
crates/core and crates/types are the paper-facing API surface: every\n\
`pub` item (fn, struct, enum, trait, mod, const, static, type, field)\n\
there must have a doc comment. This overlaps with rustc's missing_docs\n\
lint by design — the audit pass still reports it so the finding shows\n\
up in `audit_tool check` output with the rest, and keeps working if a\n\
root ever switches missing_docs off.\n\
\n\
Not flagged: `pub use` re-exports, `pub(crate)`/`pub(super)` items,\n\
and anything under `#[cfg(test)]`.",
    },
    Rule {
        id: "audit-syntax",
        summary: "malformed // audit: directive",
        explain: "\
An `// audit:` comment that does not parse as `hot-path` or\n\
`allow(<rule>) -- <reason>` is reported rather than ignored: a typo'd\n\
annotation that silently does nothing is worse than none at all. This\n\
rule cannot be allow()ed away — fix the directive.",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// True when `id` names a catalog rule (used to validate `allow(...)`).
pub fn is_known(id: &str) -> bool {
    rule(id).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_lookup_works() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(RULES[i + 1..].iter().all(|o| o.id != r.id), "dup {}", r.id);
            assert_eq!(rule(r.id).unwrap().id, r.id);
            assert!(!r.summary.is_empty() && !r.explain.is_empty());
        }
        assert!(!is_known("no-such-rule"));
    }
}
