//! A hand-rolled Rust tokenizer — just enough lexical structure for the
//! audit rules, with zero dependencies (no `syn`, no proc-macro bridge).
//!
//! The lexer preserves what rustc's lexer throws away and the audit pass
//! needs: **comments** (the `// audit:` annotation grammar lives there) and
//! the **line number** of every token. It deliberately does not build an
//! AST; the rules in [`crate::rules`] pattern-match over the flat token
//! stream plus the item table recovered by [`crate::items`].
//!
//! Correctness notes on the gnarly corners of Rust's lexical grammar:
//!
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`) by a
//!   one-character lookahead past the label;
//! * raw strings (`r#"…"#`, any number of `#`s) and raw/byte variants
//!   (`br#"…"#`, `b"…"`) are consumed without interpreting escapes;
//! * block comments nest, per the reference;
//! * doc comments (`///`, `//!`, `/** */`, `/*! */`) are lexed as comments,
//!   so code inside doc examples is never mistaken for crate code.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`, …).
    Ident,
    /// Lifetime label (`'a`) — no trailing quote.
    Lifetime,
    /// Integer or float literal (including suffixed forms).
    Number,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// One punctuation character (`.` `,` `{` `<` …). Multi-character
    /// operators appear as consecutive single-character tokens.
    Punct,
    /// A `//` line comment, text including the slashes, excluding newline.
    LineComment,
    /// A `/* … */` block comment (possibly spanning lines).
    BlockComment,
}

/// One lexeme with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// Raw source text of the lexeme.
    pub text: String,
    /// 1-indexed line of the lexeme's first character.
    pub line: u32,
}

impl Token {
    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True when this token is the given identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenizes `src` into a flat stream, comments included.
///
/// The lexer is total: any byte sequence produces a token stream (unknown
/// characters become single-character [`TokKind::Punct`] tokens), so a file
/// that rustc would reject still gets audited rather than skipped.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { s: src.as_bytes(), i: 0, line: 1, out: Vec::new() }.run(src)
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self, src: &str) -> Vec<Token> {
        while self.i < self.s.len() {
            let start = self.i;
            let line = self.line;
            let c = self.s[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.i < self.s.len() && self.s[self.i] != b'\n' {
                        self.i += 1;
                    }
                    self.push(TokKind::LineComment, src, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokKind::BlockComment, src, start, line);
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    self.push(TokKind::Literal, src, start, line);
                }
                c if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                    self.ident();
                    self.push(TokKind::Ident, src, start, line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokKind::Number, src, start, line);
                }
                b'"' => {
                    self.string(b'"');
                    self.push(TokKind::Literal, src, start, line);
                }
                b'\'' => {
                    if self.lifetime_not_char() {
                        self.i += 1; // the quote
                        self.ident();
                        self.push(TokKind::Lifetime, src, start, line);
                    } else {
                        self.string(b'\'');
                        self.push(TokKind::Literal, src, start, line);
                    }
                }
                _ => {
                    self.i += 1;
                    self.push(TokKind::Punct, src, start, line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, src: &str, start: usize, line: u32) {
        self.out.push(Token { kind, text: src[start..self.i].to_string(), line });
    }

    fn ident(&mut self) {
        while self.i < self.s.len() {
            let c = self.s[self.i];
            if c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80 {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn number(&mut self) {
        // Digits, underscores, hex/bin/oct prefixes, exponents, suffixes,
        // and a fractional point when followed by a digit (`1.5` but not
        // the range `1..4` or the method call `1.max(2)`).
        while self.i < self.s.len() {
            let c = self.s[self.i];
            let fraction = c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && self.peek(1) != Some(b'.');
            if c.is_ascii_alphanumeric() || c == b'_' || fraction {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn string(&mut self, quote: u8) {
        self.i += 1; // opening quote
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => {
                    // An escaped newline (string line-continuation) still
                    // ends a source line — skipping it silently would shift
                    // every later token's line number.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c == quote => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// At `'`: true when this is a lifetime (`'a` without closing quote).
    fn lifetime_not_char(&self) -> bool {
        let first = match self.peek(1) {
            Some(c) => c,
            None => return false,
        };
        if !(first.is_ascii_alphabetic() || first == b'_') {
            return false; // '\n' , '1' … are char literals
        }
        // 'a' is a char literal; 'ab or 'a (no closing quote) a lifetime.
        let mut j = self.i + 2;
        while j < self.s.len()
            && (self.s[j].is_ascii_alphanumeric() || self.s[j] == b'_')
        {
            j += 1;
        }
        self.s.get(j) != Some(&b'\'')
    }

    /// At `r` or `b`: consume a raw/byte string if one starts here.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut j = self.i;
        if self.s[j] == b'b' {
            j += 1;
        }
        let raw = self.s.get(j) == Some(&b'r');
        if raw {
            j += 1;
        }
        let mut hashes = 0;
        while raw && self.s.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.s.get(j) != Some(&b'"') || (!raw && self.s[self.i] == b'r') {
            return false;
        }
        if !raw && hashes == 0 && self.s[self.i] == b'b' && self.s.get(self.i + 1) != Some(&b'"') {
            return false; // plain ident starting with b
        }
        j += 1; // opening quote
        if raw {
            // Scan to `"` followed by `hashes` hashes.
            while j < self.s.len() {
                if self.s[j] == b'\n' {
                    self.line += 1;
                }
                if self.s[j] == b'"' && self.s[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                    self.i = j + 1 + hashes;
                    return true;
                }
                j += 1;
            }
            self.i = j;
            return true;
        }
        // b"…" with escapes.
        self.i = j;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => {
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    return true;
                }
                _ => self.i += 1,
            }
        }
        true
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.s.len() && depth > 0 {
            match (self.s[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let t = kinds("let x = 42;");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
        assert_eq!(t[2], (TokKind::Punct, "=".into()));
        assert_eq!(t[3], (TokKind::Number, "42".into()));
        assert_eq!(t[4], (TokKind::Punct, ";".into()));
    }

    #[test]
    fn comments_preserved_with_lines() {
        let toks = lex("a\n// audit: hot-path\nb");
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[1].text, "// audit: hot-path");
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("&'a str '\\n' 'x' 'ab");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Literal && s == "'\\n'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Literal && s == "'x'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'ab"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let t = kinds(r####"r#"has "quotes" inside"# b"bytes" br#"raw"# rest"####);
        assert_eq!(t[0].0, TokKind::Literal);
        assert_eq!(t[1], (TokKind::Literal, "b\"bytes\"".into()));
        assert_eq!(t[2].0, TokKind::Literal);
        assert_eq!(t[3], (TokKind::Ident, "rest".into()));
    }

    #[test]
    fn nested_block_comments_and_doc_examples() {
        let t = kinds("/* outer /* inner */ still */ x");
        assert_eq!(t[0].0, TokKind::BlockComment);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
        // Doc-comment bodies are comments, not code.
        let t = kinds("/// let m = HashMap::new();\nfn f() {}");
        assert_eq!(t[0].0, TokKind::LineComment);
        assert!(t[1..].iter().all(|(_, s)| s != "HashMap"));
    }

    #[test]
    fn string_with_escaped_quote_and_newline_tracking() {
        let toks = lex("\"a\\\"b\nc\" x");
        assert_eq!(toks[0].kind, TokKind::Literal);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        // String line-continuations (`\` at end of line) are everywhere in
        // this workspace's rule explanations; line numbers after them must
        // stay correct.
        let toks = lex("let s = \"a\\\nb\";\nfn f() {}");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
        let toks = lex("let s = b\"a\\\nb\";\nfn g() {}");
        let g = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(g.line, 3);
    }

    #[test]
    fn raw_strings_with_newlines_and_inner_quote_hashes() {
        // Inner `"#` with too few hashes must not close an `r##` string,
        // and embedded newlines must advance the line counter.
        let src = "let s = r##\"line1\n\"# not the end\nline3\"##;\nfn f() {}";
        let toks = lex(src);
        let lit = toks.iter().find(|t| t.kind == TokKind::Literal).unwrap();
        assert!(lit.text.contains("not the end"));
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
        // Empty raw string and a raw string holding a backslash.
        let t = kinds("r#\"\"# r\"\\\" after");
        assert_eq!(t[0], (TokKind::Literal, "r#\"\"#".into()));
        assert_eq!(t[1], (TokKind::Literal, "r\"\\\"".into()));
        assert_eq!(t[2], (TokKind::Ident, "after".into()));
        // A raw identifier is not a raw string.
        let t = kinds("r#type = 1");
        assert_eq!(t[2], (TokKind::Ident, "type".into()));
    }

    #[test]
    fn deeply_nested_block_comments_track_lines() {
        let src = "/* 1 /* 2 /* 3 */\n2 */ 1 */\nfn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
        // Code after the comment is lexed normally.
        assert!(toks.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn lifetime_ticks_never_misread_as_char_literals() {
        // `'_` and `'static` are lifetimes, also at end of input.
        let t = kinds("&'_ str &'static str 'end");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'_"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'static"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'end"));
        // Escaped-quote and non-alphabetic char literals stay literals.
        let t = kinds(r"'\'' '\\' '9' ' '");
        assert!(t.iter().all(|(k, _)| *k == TokKind::Literal));
        assert_eq!(t.len(), 4);
        // A lifetime bound followed by a char literal on one line.
        let t = kinds("fn f<'a>(c: char) { let x = 'x'; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Literal && s == "'x'"));
    }

    #[test]
    fn number_forms() {
        let t = kinds("0x1F 1_000 1.5e3 1..4 1.max");
        assert_eq!(t[0], (TokKind::Number, "0x1F".into()));
        assert_eq!(t[1], (TokKind::Number, "1_000".into()));
        assert_eq!(t[2], (TokKind::Number, "1.5e3".into()));
        assert_eq!(t[3], (TokKind::Number, "1".into()));
        assert!(t[4].1 == "." && t[5].1 == ".");
        let dot_max = &t[9];
        assert_eq!(dot_max.1, "max");
    }
}
