//! Minimal JSON support for the audit report: an escaper for emission and
//! a small recursive-descent parser for reading committed baselines back.
//!
//! The workspace is deliberately zero-dependency, so the audit tool owns
//! its own JSON. The parser handles the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, literals) but is tuned for the
//! one producer that matters — [`crate::check::AuditReport::to_json`] —
//! and keeps numbers as `f64`, which is exact for every line number and
//! counter the report contains.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document. Errors carry a byte offset and reason.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut i = 0;
    let v = value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => Ok(Json::Str(string(b, i)?)),
        Some(b't') => literal(b, i, "true", Json::Bool(true)),
        Some(b'f') => literal(b, i, "false", Json::Bool(false)),
        Some(b'n') => literal(b, i, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(format!("unexpected byte at {i}")),
    }
}

fn literal(b: &[u8], i: &mut usize, text: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(text.as_bytes()) {
        *i += text.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len() && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    let mut out = Vec::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf8 in string".into());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(format!("bad \\u escape at byte {i}"))?;
                        // Surrogate pairs don't occur in our own output;
                        // map unpaired surrogates to the replacement char.
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            c => {
                out.push(c);
                *i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn object(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // `{`
    let mut fields = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected key at byte {i}"));
        }
        let key = string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected `:` at byte {i}"));
        }
        *i += 1;
        let v = value(b, i)?;
        if !fields.iter().any(|(k, _): &(String, Json)| *k == key) {
            fields.push((key, v));
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // `[`
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes_and_structure() {
        let src = r#"{"a": [1, 2.5, -3], "s": "line\nbreak \"q\" \\", "b": true, "n": null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("s").unwrap().as_str(), Some("line\nbreak \"q\" \\"));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn escape_emits_parseable_strings() {
        let nasty = "tab\t quote\" back\\ nl\n ctl\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        assert_eq!(parse(&doc).unwrap().get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1, ]").is_err());
    }
}
