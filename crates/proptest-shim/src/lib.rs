#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! A minimal, dependency-free property-testing harness exposing the subset
//! of the `proptest` API this workspace's property tests use.
//!
//! The workspace must build and test without registry access (the default
//! feature set has zero external dependencies), so the real `proptest`
//! crate cannot be a dev-dependency. This shim is wired in under the
//! dependency name `proptest` and provides:
//!
//! * the [`Strategy`] trait with [`prop_map`](Strategy::prop_map) and
//!   [`prop_filter_map`](Strategy::prop_filter_map);
//! * integer-range, boolean, [`Just`], tuple, union and
//!   [`collection::vec`] strategies;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_oneof!`] macros;
//! * [`ProptestConfig`] (`with_cases`) and [`TestCaseError`].
//!
//! Unlike the real crate there is **no shrinking** and no persistence of
//! failing cases; a failure reports the case number and the deterministic
//! seed. Set `PROPTEST_CASES` to change the case count and
//! `PROPTEST_SEED` to reproduce or vary a run.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (n > 0), via 128-bit widening multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// The seed for a test run: `PROPTEST_SEED` if set, else a fixed default so
/// CI runs are reproducible.
pub fn env_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_B0B1_BEE5_0001)
}

/// The case count for a test run: `PROPTEST_CASES` if set, else the
/// configured count.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// Run-time configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (counts against the reject budget).
    Reject(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded-case marker.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result alias matching proptest's.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values. `generate` returns `None` when the drawn
/// candidate was rejected (e.g. by [`Strategy::prop_filter_map`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps through `f`, rejecting candidates for which it returns `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f, _whence: whence }
    }

    /// Keeps only candidates satisfying `f`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, _whence: whence }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                Some(self.start.wrapping_add(rng.below(span) as $t))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                // span == 0 means the full u64 domain.
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                Some(lo.wrapping_add(off as $t))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

tuple_strategy!(A/a);
tuple_strategy!(A/a, B/b);
tuple_strategy!(A/a, B/b, C/c);
tuple_strategy!(A/a, B/b, C/c, D/d);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);

/// Uniform choice among type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A strategy choosing uniformly among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The uniform boolean strategy (`prop::bool::ANY`).
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen_bool())
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    pub use super::{bool, collection};
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?} ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?} ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests; see the crate docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::resolve_cases(config.cases);
            let seed = $crate::env_seed();
            let mut rng = $crate::TestRng::from_seed(seed);
            let strategy = ($($strategy,)+);
            let mut done = 0u32;
            let mut rejects = 0u32;
            while done < cases {
                match $crate::Strategy::generate(&strategy, &mut rng) {
                    ::core::option::Option::None => {
                        rejects += 1;
                        assert!(
                            rejects <= 65_536,
                            "proptest shim: strategy rejected 65536 candidates"
                        );
                    }
                    ::core::option::Option::Some(($($arg,)+)) => {
                        let result: ::core::result::Result<(), $crate::TestCaseError> =
                            (|| { $body ::core::result::Result::Ok(()) })();
                        match result {
                            ::core::result::Result::Ok(()) => done += 1,
                            ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                                rejects += 1;
                                assert!(
                                    rejects <= 65_536,
                                    "proptest shim: 65536 cases rejected"
                                );
                            }
                            ::core::result::Result::Err(e) => {
                                panic!(
                                    "proptest case {}/{} failed (PROPTEST_SEED={}): {}",
                                    done + 1, cases, seed, e
                                );
                            }
                        }
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let distinct: std::collections::BTreeSet<_> = va.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..100, y in 1u32..=8, z in 0usize..3) {
            prop_assert!((5..100).contains(&x));
            prop_assert!((1..=8).contains(&y));
            prop_assert!(z < 3, "z = {z}");
        }

        #[test]
        fn vec_and_oneof_compose(v in prop::collection::vec(
            (0u64..10, prop::bool::ANY).prop_map(|(n, b)| if b { n } else { n + 10 }),
            1..20,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!(x < 20);
            }
        }

        #[test]
        fn filter_map_rejects(v in (0u64..100).prop_filter_map("even", |n| {
            if n % 2 == 0 { Some(n) } else { None }
        })) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_hits_every_arm(picks in prop::collection::vec(
            prop_oneof![Just(1u8), Just(2), Just(3)],
            200..201,
        )) {
            for p in &picks {
                prop_assert!((1..=3).contains(p));
            }
            prop_assert!(picks.contains(&1));
            prop_assert!(picks.contains(&3));
        }
    }
}
