#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # Bumblebee — a MemCache design for die-stacked and off-chip heterogeneous memory systems
//!
//! A from-scratch Rust reproduction of *Bumblebee* (Hua et al., DAC 2023):
//! a hybrid memory architecture in which every die-stacked HBM page can
//! serve either as an off-chip DRAM **cache** (cHBM) or as OS-visible
//! **part-of-memory** (mHBM), with the cHBM:mHBM ratio adjusted in real time
//! from measured spatial/temporal locality and memory footprint.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — addresses, geometry, the controller trait, plans, stats.
//! * [`dram`] — HBM2/DDR4 channel/bank timing and IDD-based energy models.
//! * [`cache`] — SRAM cache hierarchy (L1/L2/L3; LRU/SRRIP/DRRIP).
//! * [`trace`] — synthetic workloads with calibrated locality and
//!   SPEC CPU2017-like profiles.
//! * [`core`] — the Bumblebee HMMC itself (PRT, BLE array, hotness tracker,
//!   data-movement engine).
//! * [`baselines`] — Alloy Cache, Unison Cache, Banshee, Chameleon, Hybrid2
//!   and the paper's ablation variants.
//! * [`sim`] — the system simulator and the per-figure experiment runners.
//!
//! # Quickstart
//!
//! ```
//! use bumblebee::sim::{run_design, run_reference, Design, RunConfig};
//! use bumblebee::trace::SpecProfile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = RunConfig::tiny(); // scaled-down geometry for fast runs
//! let mcf = SpecProfile::mcf();
//! let baseline = run_reference(&cfg, &mcf)?;
//! let report = run_design(Design::Bumblebee, &cfg, &mcf)?;
//! println!("IPC vs no-HBM baseline: {:.2}x", report.normalized_ipc(&baseline));
//! # Ok(())
//! # }
//! ```

pub use bumblebee_core as core;
pub use memsim_baselines as baselines;
pub use memsim_cache as cache;
pub use memsim_dram as dram;
pub use memsim_sim as sim;
pub use memsim_trace as trace;
pub use memsim_types as types;
