#!/usr/bin/env bash
# Tier-1 verification gate: offline release build, full test suite, and a
# parallel-vs-serial smoke run of one figure binary. Run from the repo root.
#
#   scripts/verify.sh
#
# Everything here must pass with NO network access — the workspace has no
# registry dependencies (property tests use the in-repo proptest shim).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== lint: cargo clippy --workspace --all-targets -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== audit: workspace pass vs committed baseline (audit_tool check) =="
# Hard gate: the two-pass auditor (crates/analysis) runs every rule —
# per-file det-*/hot-*/struct-* plus the workspace call-graph, merge-
# commutativity, unit-domain and counter-reconciliation passes — and
# ratchets the findings against results/audit_baseline.json. New findings
# fail; entries that no longer reproduce fail too (delete them from the
# baseline so the bar only moves down). Regenerate after intentional
# changes with:
#   cargo run --release -p memsim-analysis --bin audit_tool -- \
#     check --format json > results/audit_baseline.json
cargo run --release -q -p memsim-analysis --bin audit_tool -- \
  check --format json --baseline results/audit_baseline.json >/dev/null

echo "== audit: self-test — doctored inputs must be caught =="
audit_smoke="$(mktemp -d)"
mkdir -p "$audit_smoke/crates/sim/src" "$audit_smoke/crates/obs/src"
cat > "$audit_smoke/crates/sim/src/det.rs" <<'RS'
//! Doctored self-test input: the injected `HashMap::new` below must trip
//! det-hashmap, proving the verify gate actually runs the auditor.
fn doctored() -> usize {
    std::collections::HashMap::<u64, u64>::new().len()
}
RS
cat > "$audit_smoke/crates/sim/src/transitive.rs" <<'RS'
//! Doctored self-test input: an unannotated controller entry point must
//! trip the workspace hot-transitive pass.
pub struct SmokeController(u64);
impl SmokeController {
    pub fn access(&mut self, a: u64) -> u64 { self.0 += a; self.0 }
}
RS
cat > "$audit_smoke/crates/sim/src/merge.rs" <<'RS'
//! Doctored self-test input: a last-writer-wins `=` inside a merge fn
//! must trip merge-commutative.
pub struct Partial { pub count: u64, pub last: u64 }
impl Partial {
    // audit: merge
    pub fn absorb(&mut self, o: &Partial) {
        self.count += o.count;
        self.last = o.last;
    }
}
RS
cat > "$audit_smoke/crates/sim/src/units.rs" <<'RS'
//! Doctored self-test input: adding an annotated cycle count to an
//! annotated byte count must trip unit-mismatch.
pub struct Probe {
    pub busy: u64, // audit: unit(cycles)
    pub moved: u64, // audit: unit(bytes)
}
impl Probe {
    pub fn skew(&self) -> u64 { self.busy + self.moved }
}
RS
cat > "$audit_smoke/crates/obs/src/counters.rs" <<'RS'
//! Doctored self-test input: a pub obs counter named by no test or
//! reconciliation invariant must trip obs-counter-reconcile.
pub struct SmokeCounters {
    pub orphaned: u64,
}
RS
for doctored in crates/sim/src/det.rs crates/sim/src/transitive.rs \
                crates/sim/src/merge.rs crates/sim/src/units.rs \
                crates/obs/src/counters.rs; do
  if cargo run --release -q -p memsim-analysis --bin audit_tool -- \
    check --root "$audit_smoke" "$audit_smoke/$doctored" \
    >/dev/null 2>&1; then
    echo "FAIL: audit_tool did not flag doctored $doctored" >&2
    rm -rf "$audit_smoke"
    exit 1
  fi
done
rm -rf "$audit_smoke"
echo "ok: workspace audit matches baseline, all 5 doctored inputs exit nonzero"

echo "== property tests (in-repo proptest shim) =="
cargo test -q --workspace \
  --features memsim-types/proptest,memsim-cache/proptest,memsim-baselines/proptest,memsim-dram/proptest,bumblebee-core/proptest,memsim-sim/proptest

echo "== smoke: fig8 serial vs parallel must be byte-identical =="
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
common=(--scale 256 --accesses 20000 --workloads mcf,wrf)
cargo run --release -q -p bumblebee-bench --bin fig8 -- \
  "${common[@]}" --jobs 1 --out "$smoke/serial" >/dev/null
cargo run --release -q -p bumblebee-bench --bin fig8 -- \
  "${common[@]}" --jobs 4 --out "$smoke/parallel" >/dev/null
if ! cmp -s "$smoke/serial/fig8.jsonl" "$smoke/parallel/fig8.jsonl"; then
  echo "FAIL: fig8.jsonl differs between --jobs 1 and --jobs 4" >&2
  diff "$smoke/serial/fig8.jsonl" "$smoke/parallel/fig8.jsonl" | head >&2
  exit 1
fi
echo "ok: $(wc -l < "$smoke/serial/fig8.jsonl") JSONL lines identical at both widths"

echo "== smoke: fig6 set-sharded runs must be byte-identical at any width =="
# The --shards tentpole invariant as a CI artifact: one fig6 sweep (which
# mixes shardable Bumblebee cells with serial-fallback No-HBM cells) run
# at shard widths 1, 2 and 8 must produce identical results, epoch
# time-series, event-trace and sampled latency JSONL, byte for byte.
for n in 1 2 8; do
  cargo run --release -q -p bumblebee-bench --bin fig6 -- \
    --scale 256 --accesses 20000 --workloads mcf --jobs 2 --metrics \
    --trace-sample 64 --shards "$n" --out "$smoke/shards$n" >/dev/null
done
for f in fig6.jsonl fig6.epochs.jsonl fig6.trace.jsonl fig6.lat.jsonl fig6.bw.jsonl; do
  if [ ! -s "$smoke/shards1/$f" ]; then
    echo "FAIL: sharded smoke did not produce a non-empty $f" >&2
    exit 1
  fi
  for n in 2 8; do
    if ! cmp -s "$smoke/shards1/$f" "$smoke/shards$n/$f"; then
      echo "FAIL: $f differs between --shards 1 and --shards $n" >&2
      diff "$smoke/shards1/$f" "$smoke/shards$n/$f" | head >&2
      exit 1
    fi
  done
done
echo "ok: fig6 results/epochs/trace/lat/bw identical at --shards 1, 2 and 8"

echo "== smoke: fig6 batched pipeline must be byte-identical at any chunk width =="
# The --batch tentpole invariant: batching is a pure performance
# transform, so one fig6 sweep at chunk widths 1, 64 and 4096 must
# produce identical results, epoch, trace, latency and bandwidth JSONL.
# Byte-identity holds *within* a pipeline — the serial (no --shards)
# matrix compares against serial --batch 1 and the sharded (--shards 2)
# matrix against sharded --batch 1; the two pipelines are distinct
# documented time-domain models (DESIGN.md §10).
for n in 1 64 4096; do
  cargo run --release -q -p bumblebee-bench --bin fig6 -- \
    --scale 256 --accesses 20000 --workloads mcf --jobs 2 --metrics \
    --trace-sample 64 --batch "$n" --out "$smoke/batch$n" >/dev/null
  cargo run --release -q -p bumblebee-bench --bin fig6 -- \
    --scale 256 --accesses 20000 --workloads mcf --jobs 2 --metrics \
    --trace-sample 64 --shards 2 --batch "$n" --out "$smoke/batch${n}s2" >/dev/null
done
for f in fig6.jsonl fig6.epochs.jsonl fig6.trace.jsonl fig6.lat.jsonl fig6.bw.jsonl; do
  if [ ! -s "$smoke/batch1/$f" ] || [ ! -s "$smoke/batch1s2/$f" ]; then
    echo "FAIL: batched smoke did not produce a non-empty $f" >&2
    exit 1
  fi
  for n in 64 4096; do
    if ! cmp -s "$smoke/batch1/$f" "$smoke/batch$n/$f"; then
      echo "FAIL: serial $f differs between --batch 1 and --batch $n" >&2
      diff "$smoke/batch1/$f" "$smoke/batch$n/$f" | head >&2
      exit 1
    fi
    if ! cmp -s "$smoke/batch1s2/$f" "$smoke/batch${n}s2/$f"; then
      echo "FAIL: sharded $f differs between --batch 1 and --batch $n" >&2
      diff "$smoke/batch1s2/$f" "$smoke/batch${n}s2/$f" | head >&2
      exit 1
    fi
  done
done
echo "ok: fig6 results/epochs/trace/lat/bw identical at --batch 1, 64 and 4096 (serial and --shards 2)"

echo "== smoke: trace_tool latency — per-path tails reconcile exactly =="
# Hard gate on the latency-attribution acceptance criterion: the per-path
# sample counts in fig6.lat.jsonl must reconcile EXACTLY against the
# controller hit/miss/bypass counters (trace_tool latency exits nonzero
# on any mismatch), for Bumblebee and every baseline in the sweep.
cargo run --release -q -p bumblebee-bench --bin trace_tool -- \
  latency "$smoke/shards1/fig6.lat.jsonl" >/dev/null
echo "ok: path counts reconcile against CtrlStats for every design"

echo "== smoke: trace_tool bandwidth — cause bytes reconcile exactly =="
# Hard gate on the traffic-accounting acceptance criterion: per device,
# the cause-attributed byte sums in fig6.bw.jsonl must reconcile EXACTLY
# against the DRAM devices' own total_bytes counters (trace_tool
# bandwidth exits nonzero on any unclassified, dropped or double-counted
# transaction), for Bumblebee and every baseline in the shard matrix.
cargo run --release -q -p bumblebee-bench --bin trace_tool -- \
  bandwidth "$smoke/shards1/fig6.bw.jsonl" >/dev/null
echo "ok: cause-attributed bytes reconcile with device counters"

echo "== smoke: fig6 --metrics writes observability artifacts =="
cargo run --release -q -p bumblebee-bench --bin fig6 -- \
  --scale 256 --accesses 20000 --workloads mcf --jobs 2 --metrics \
  --out "$smoke/metrics" >/dev/null
for f in fig6.jsonl fig6.epochs.jsonl fig6.trace.jsonl fig6.metrics.jsonl; do
  if [ ! -s "$smoke/metrics/$f" ]; then
    echo "FAIL: --metrics did not produce a non-empty $f" >&2
    exit 1
  fi
done
cargo run --release -q -p bumblebee-bench --bin trace_tool -- \
  summarize "$smoke/metrics/fig6.trace.jsonl" >/dev/null
echo "ok: epochs/trace/metrics JSONL written and summarizable"

echo "== smoke: checked-invariant build must be byte-identical =="
# Same fig6 run compiled with --features checked: cross-structure invariant
# sweeps fire every 4096 accesses (BUMBLEBEE_CHECKED_INTERVAL default) and
# panic on the first violation. The sweeps are read-only, so the JSONL
# output must match the unchecked run byte for byte.
cargo run --release -q -p bumblebee-bench --features checked --bin fig6 -- \
  --scale 256 --accesses 20000 --workloads mcf --jobs 2 --metrics \
  --out "$smoke/checked" >/dev/null
if ! cmp -s "$smoke/metrics/fig6.jsonl" "$smoke/checked/fig6.jsonl"; then
  echo "FAIL: fig6.jsonl differs between unchecked and --features checked" >&2
  diff "$smoke/metrics/fig6.jsonl" "$smoke/checked/fig6.jsonl" | head >&2
  exit 1
fi
echo "ok: invariant sweeps passed and output is byte-identical"

echo "== smoke: trace_tool diff — self clean, doctored caught =="
cargo run --release -q -p bumblebee-bench --bin trace_tool -- \
  diff "$smoke/metrics/fig6.epochs.jsonl" "$smoke/metrics/fig6.epochs.jsonl" >/dev/null
sed 's/"fills":[0-9]*/"fills":0/' "$smoke/metrics/fig6.epochs.jsonl" \
  > "$smoke/metrics/doctored.epochs.jsonl"
if cargo run --release -q -p bumblebee-bench --bin trace_tool -- \
  diff "$smoke/metrics/fig6.epochs.jsonl" "$smoke/metrics/doctored.epochs.jsonl" \
  >/dev/null 2>&1; then
  echo "FAIL: trace_tool diff did not flag a doctored epochs file" >&2
  exit 1
fi
echo "ok: epochs self-diff clean, doctored diff exits nonzero"

echo "== bench: bench_harness --quick + phase coverage + compare gates =="
cargo run --release -q -p bumblebee-bench --bin bench_harness -- \
  --quick --out "$smoke/bench" --sha smoke >/dev/null
bench="$smoke/bench/BENCH_smoke.json"
if [ ! -s "$bench" ]; then
  echo "FAIL: bench_harness did not write $bench" >&2
  exit 1
fi
coverage="$(grep -o '"self_coverage":[0-9.eE+-]*' "$bench" | head -1 | cut -d: -f2)"
if ! awk -v c="$coverage" 'BEGIN { exit !(c >= 0.90) }'; then
  echo "FAIL: phase self-time coverage $coverage < 0.90 of measured wall time" >&2
  exit 1
fi
cargo run --release -q -p bumblebee-bench --bin bench_tool -- \
  compare "$bench" "$bench" >/dev/null
echo "ok: self-compare reports zero regressions (phase coverage $coverage)"
sed -E 's/"cycles":[0-9]+/"cycles":1/' "$bench" > "$smoke/bench/doctored.json"
if cargo run --release -q -p bumblebee-bench --bin bench_tool -- \
  compare "$bench" "$smoke/bench/doctored.json" >/dev/null 2>&1; then
  echo "FAIL: bench_tool compare did not flag a doctored regression" >&2
  exit 1
fi
echo "ok: doctored regression detected (nonzero exit)"

echo "== bench: cycle-domain invariants vs committed baseline =="
# Wall times are machine-specific, so the time gate is disabled here; the
# cycle-domain invariants (cycles, IPC, hit rate, migrations, over-fetch)
# must match results/bench_baseline.json exactly. A PR that intentionally
# changes simulated behavior must regenerate the baseline:
#   cargo run --release -p bumblebee-bench --bin bench_harness -- \
#     --quick --name bench_baseline
cargo run --release -q -p bumblebee-bench --bin bench_tool -- \
  compare results/bench_baseline.json "$bench" \
  --time-threshold-pct 1000000 >/dev/null
echo "ok: invariants match the committed baseline"

echo "== bench: wall-time check vs committed baseline (warn-only) =="
# Same comparison at the default 30% time threshold. Wall times on shared
# CI machines are noisy, so a time regression here WARNS instead of
# failing — the exact invariant gate above is the hard gate. A warning
# that persists across runs on a quiet machine is a real regression.
if cargo run --release -q -p bumblebee-bench --bin bench_tool -- \
  compare results/bench_baseline.json "$bench"; then
  echo "ok: wall time within 30% of the committed baseline"
else
  echo "WARN: wall time regressed >30% vs the committed baseline" \
       "(invariants are clean; treat as noise unless it persists)" >&2
fi

echo "== bench: batched-pipeline throughput >= 1.5x the per-access pipeline (warn-only) =="
# The tentpole's perf claim as a CI artifact: the same quick suite run
# with --batch 1 (the one-access-at-a-time pipeline) must be at least
# 1.5x slower than the default-batch run above — measured back-to-back
# on this machine, so the ratio is honest even on slow hosts. The
# cycle-domain invariants between the two BENCH files are a hard gate
# (batching must not change a single simulated number); the throughput
# ratio itself WARNS because a loaded machine can squeeze either run.
cargo run --release -q -p bumblebee-bench --bin bench_harness -- \
  --quick --batch 1 --out "$smoke/bench" --sha batch1 >/dev/null
cargo run --release -q -p bumblebee-bench --bin bench_tool -- \
  compare "$smoke/bench/BENCH_batch1.json" "$bench" \
  --time-threshold-pct 1000000 >/dev/null
echo "ok: cycle-domain invariants identical at --batch 1 and the default batch"
aggregate() {
  cargo run --release -q -p bumblebee-bench --bin bench_tool -- show "$1" \
    | grep -oE '[0-9]+ accesses/sec aggregate' | cut -d' ' -f1
}
rate1="$(aggregate "$smoke/bench/BENCH_batch1.json")"
rateN="$(aggregate "$bench")"
if awk -v a="$rate1" -v b="$rateN" 'BEGIN { exit !(a > 0 && b / a >= 1.5) }'; then
  echo "ok: ${rateN} accesses/sec batched vs ${rate1} at --batch 1 (>= 1.5x)"
else
  echo "WARN: batched suite throughput ${rateN} accesses/sec is < 1.5x the" \
       "--batch 1 pipeline (${rate1}); expected only on loaded hosts" >&2
fi

echo "== bench: disabled-instrumentation wall within 2% of baseline (warn-only) =="
# The timed bench repeats always run with latency sampling AND traffic
# accounting disabled (the attribution pass is a separate untimed run), so
# `sampled()` must compile down to a branch that never fires and the
# traffic accumulator must stay a never-taken `Option` check: even a 2%
# wall drift vs the committed baseline would mean the instrumentation
# leaks into the uninstrumented hot path. Shared CI machines are too
# noisy for a hard gate at 2%, so this WARNS.
if cargo run --release -q -p bumblebee-bench --bin bench_tool -- \
  compare results/bench_baseline.json "$bench" \
  --time-threshold-pct 2 >/dev/null 2>&1; then
  echo "ok: disabled-instrumentation wall within 2% of the committed baseline"
else
  echo "WARN: wall time drifted >2% vs the committed baseline with sampling" \
       "and traffic accounting disabled (treat as noise unless it persists" \
       "on a quiet machine)" >&2
fi

echo "== bench: --shards intra-run speedup (warn-only) =="
# Sharded quick suites at widths 1 and 4 (Bumblebee cells only — the
# harness restricts a sharded suite to shardable designs). The invariant
# comparison is a hard gate: sharding must not change a single simulated
# number. The >= 2x suite-wall speedup is warn-only — it needs 4 real
# cores and a quiet machine — and both BENCH files record their shard
# width for later inspection.
cores="$(nproc 2>/dev/null || echo 1)"
if [ "$cores" -lt 4 ]; then
  echo "skip: host has $cores core(s), speedup check needs >= 4"
else
  cargo run --release -q -p bumblebee-bench --bin bench_harness -- \
    --quick --shards 1 --out "$smoke/bench" --sha shards1 >/dev/null
  cargo run --release -q -p bumblebee-bench --bin bench_harness -- \
    --quick --shards 4 --out "$smoke/bench" --sha shards4 >/dev/null
  cargo run --release -q -p bumblebee-bench --bin bench_tool -- \
    compare "$smoke/bench/BENCH_shards1.json" "$smoke/bench/BENCH_shards4.json" \
    --time-threshold-pct 1000000 >/dev/null
  echo "ok: cycle-domain invariants identical at --shards 1 and --shards 4"
  suite_wall() {
    grep -o '"wall_ms":[0-9.eE+-]*' "$1" | cut -d: -f2 | awk '{s+=$1} END {print s}'
  }
  wall1="$(suite_wall "$smoke/bench/BENCH_shards1.json")"
  wall4="$(suite_wall "$smoke/bench/BENCH_shards4.json")"
  if awk -v a="$wall1" -v b="$wall4" 'BEGIN { exit !(b > 0 && a / b >= 2.0) }'; then
    echo "ok: suite wall ${wall1} ms at 1 shard vs ${wall4} ms at 4 shards (>= 2x)"
  else
    echo "WARN: --shards 4 suite wall ${wall4} ms is < 2x faster than" \
         "--shards 1 (${wall1} ms); expected on loaded or small hosts" >&2
  fi
fi

echo "== verify.sh: all gates passed =="
