#!/usr/bin/env bash
# Tier-1 verification gate: offline release build, full test suite, and a
# parallel-vs-serial smoke run of one figure binary. Run from the repo root.
#
#   scripts/verify.sh
#
# Everything here must pass with NO network access — the workspace has no
# registry dependencies (property tests use the in-repo proptest shim).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== lint: cargo clippy --workspace --all-targets -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== property tests (in-repo proptest shim) =="
cargo test -q --workspace \
  --features memsim-types/proptest,memsim-cache/proptest,memsim-baselines/proptest,memsim-dram/proptest,bumblebee-core/proptest

echo "== smoke: fig8 serial vs parallel must be byte-identical =="
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
common=(--scale 256 --accesses 20000 --workloads mcf,wrf)
cargo run --release -q -p bumblebee-bench --bin fig8 -- \
  "${common[@]}" --jobs 1 --out "$smoke/serial" >/dev/null
cargo run --release -q -p bumblebee-bench --bin fig8 -- \
  "${common[@]}" --jobs 4 --out "$smoke/parallel" >/dev/null
if ! cmp -s "$smoke/serial/fig8.jsonl" "$smoke/parallel/fig8.jsonl"; then
  echo "FAIL: fig8.jsonl differs between --jobs 1 and --jobs 4" >&2
  diff "$smoke/serial/fig8.jsonl" "$smoke/parallel/fig8.jsonl" | head >&2
  exit 1
fi
echo "ok: $(wc -l < "$smoke/serial/fig8.jsonl") JSONL lines identical at both widths"

echo "== smoke: fig6 --metrics writes observability artifacts =="
cargo run --release -q -p bumblebee-bench --bin fig6 -- \
  --scale 256 --accesses 20000 --workloads mcf --jobs 2 --metrics \
  --out "$smoke/metrics" >/dev/null
for f in fig6.jsonl fig6.epochs.jsonl fig6.trace.jsonl fig6.metrics.jsonl; do
  if [ ! -s "$smoke/metrics/$f" ]; then
    echo "FAIL: --metrics did not produce a non-empty $f" >&2
    exit 1
  fi
done
cargo run --release -q -p bumblebee-bench --bin trace_tool -- \
  summarize "$smoke/metrics/fig6.trace.jsonl" >/dev/null
echo "ok: epochs/trace/metrics JSONL written and summarizable"

echo "== verify.sh: all gates passed =="
