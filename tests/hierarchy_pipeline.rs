//! Full-stack pipeline test: raw access stream → L1/L2/L3 hierarchy →
//! hybrid-memory controller → DRAM devices.
//!
//! The figure experiments feed controllers synthesized LLC-miss streams
//! directly (see DESIGN.md); this test exercises the alternative path
//! through the real cache hierarchy to validate that both substrates
//! compose.

use bumblebee::cache::Hierarchy;
use bumblebee::core::{BumblebeeConfig, BumblebeeController};
use bumblebee::sim::{RunConfig, SimParams, System};
use bumblebee::trace::SpecProfile;
use bumblebee::types::{Access, AccessKind, HybridMemoryController};

#[test]
fn miss_stream_through_hierarchy_reaches_the_controller() {
    let cfg = RunConfig::tiny();
    let mut hierarchy = Hierarchy::table1_scaled(64);
    let controller = BumblebeeController::new(
        cfg.geometry,
        BumblebeeConfig { sram_budget: cfg.sram_budget, ..BumblebeeConfig::paper() },
    );
    let mut system = System::new(controller, cfg.geometry(), SimParams::default(), true);
    let mut workload = cfg.workload(&SpecProfile::mcf());

    let mut llc_misses = 0u64;
    let mut writebacks = 0u64;
    for _ in 0..60_000 {
        let a = workload.next_access();
        let out = hierarchy.access(a.addr, a.kind.is_write(), u64::from(a.insts));
        if let Some(fill) = out.fill {
            llc_misses += 1;
            system.step(Access { addr: fill, kind: AccessKind::Read, insts: a.insts });
        }
        if let Some(wb) = out.writeback {
            writebacks += 1;
            system.step(Access { addr: wb, kind: AccessKind::Write, insts: 0 });
        }
    }
    assert!(llc_misses > 0, "the hierarchy must produce LLC misses");
    assert!(writebacks > 0, "dirty lines must reach the memory system");
    assert_eq!(system.controller().stats().total_accesses(), llc_misses + writebacks);
    assert!(system.now() > 0);
    // The hierarchy filtered the stream: LLC misses < raw accesses.
    assert!(llc_misses < 60_000);
    assert!(hierarchy.mpki() > 0.0);
}

#[test]
fn hierarchy_filters_more_for_cache_friendly_streams() {
    let cfg = RunConfig::tiny();
    let miss_ratio = |name: &str| {
        let mut h = Hierarchy::table1_scaled(64);
        let mut w = cfg.workload(&SpecProfile::named(name));
        let mut misses = 0u64;
        for _ in 0..40_000 {
            let a = w.next_access();
            if h.access(a.addr, a.kind.is_write(), 1).is_llc_miss() {
                misses += 1;
            }
        }
        misses as f64 / 40_000.0
    };
    // leela's tiny footprint caches well; roms streams through everything.
    let leela = miss_ratio("leela");
    let roms = miss_ratio("roms");
    assert!(
        leela < roms,
        "leela ({leela:.3}) should filter better than roms ({roms:.3})"
    );
}
