//! Cross-crate integration: trace generation → controllers → DRAM timing,
//! for every design in the registry.

use bumblebee::sim::{run_design, run_reference, Design, RunConfig};
use bumblebee::trace::SpecProfile;
use bumblebee::types::HybridMemoryController;

fn all_designs() -> Vec<Design> {
    let mut v = vec![Design::NoHbm];
    v.extend(Design::fig8());
    v.extend(
        memsim_baselines_labels()
            .into_iter()
            .map(Design::Ablation),
    );
    v
}

fn memsim_baselines_labels() -> Vec<&'static str> {
    bumblebee::baselines::ablations::FIG7_LABELS.to_vec()
}

#[test]
fn every_design_completes_a_run_with_consistent_reports() {
    let cfg = RunConfig::tiny();
    let profile = SpecProfile::mcf();
    for design in all_designs() {
        let r = run_design(design, &cfg, &profile).expect("run completes");
        assert!(r.cycles > 0, "{}", r.design);
        assert!(r.instructions > 0, "{}", r.design);
        assert!(r.ipc > 0.0, "{}", r.design);
        assert_eq!(r.accesses, cfg.accesses, "{}", r.design);
        // Controllers served every access exactly once.
        assert_eq!(
            r.stats.total_accesses(),
            cfg.accesses + cfg.warmup,
            "{} (incl. warmup)",
            r.design
        );
        if design.uses_hbm() {
            assert!(r.hbm_bytes > 0, "{} must touch HBM", r.design);
        } else {
            assert_eq!(r.hbm_bytes, 0, "{} must not touch HBM", r.design);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let cfg = RunConfig::tiny();
    for design in [Design::Bumblebee, Design::Banshee, Design::Hybrid2] {
        let a = run_design(design, &cfg, &SpecProfile::wrf()).expect("run");
        let b = run_design(design, &cfg, &SpecProfile::wrf()).expect("run");
        assert_eq!(a.cycles, b.cycles, "{}", a.design);
        assert_eq!(a.hbm_bytes, b.hbm_bytes, "{}", a.design);
        assert_eq!(a.dram_bytes, b.dram_bytes, "{}", a.design);
        assert!((a.dynamic_energy_pj - b.dynamic_energy_pj).abs() < 1e-6, "{}", a.design);
    }
}

#[test]
fn baseline_normalization_is_identity() {
    let cfg = RunConfig::tiny();
    let base = run_reference(&cfg, &SpecProfile::xz()).expect("run");
    assert!((base.normalized_ipc(&base) - 1.0).abs() < 1e-12);
    assert!((base.normalized_energy(&base) - 1.0).abs() < 1e-12);
    assert!((base.normalized_dram_traffic(&base) - 1.0).abs() < 1e-12);
}

#[test]
fn hbm_designs_shift_traffic_off_the_dram_bus() {
    let cfg = RunConfig::tiny();
    let p = SpecProfile::mcf();
    let base = run_reference(&cfg, &p).expect("run");
    let bee = run_design(Design::Bumblebee, &cfg, &p).expect("run");
    // mcf's hot set lives in HBM: demand DRAM traffic must drop.
    assert!(
        bee.stats.hbm_hit_rate() > 0.8,
        "mcf hot set should be HBM-resident, hit rate {}",
        bee.stats.hbm_hit_rate()
    );
    assert!(bee.normalized_ipc(&base) > 1.0);
}

#[test]
fn direct_controller_use_matches_the_documented_api() {
    // The README/quickstart path: build a controller by hand and drive it.
    use bumblebee::core::{BumblebeeConfig, BumblebeeController};
    use bumblebee::types::{Access, AccessPlan, Addr, Geometry};

    let geometry = Geometry::paper(256);
    let mut hmmc = BumblebeeController::new(geometry, BumblebeeConfig::default());
    let mut plan = AccessPlan::new();
    for i in 0..1000u64 {
        plan.clear();
        hmmc.access(&Access::read(Addr((i % 64) * 2048)), &mut plan);
    }
    assert!(hmmc.stats().hbm_hit_rate() > 0.5);
    assert!(hmmc.metadata_bytes() > 0);
    assert!(hmmc.os_visible_bytes() >= geometry.dram_bytes());
}

#[test]
fn mpki_of_generated_streams_survives_the_full_pipeline() {
    let cfg = RunConfig::tiny();
    for name in ["roms", "mcf", "leela"] {
        let p = SpecProfile::named(name);
        let r = run_design(Design::NoHbm, &cfg, &p).expect("run");
        let mpki = r.accesses as f64 * 1000.0 / r.instructions as f64;
        let rel = (mpki - p.mpki).abs() / p.mpki;
        assert!(rel < 0.2, "{name}: pipeline MPKI {mpki:.2} vs paper {:.2}", p.mpki);
    }
}
