//! Directional reproduction of the paper's headline claims at test scale.
//!
//! These assert the *shape* of the results — who wins, roughly where —
//! not absolute magnitudes (see EXPERIMENTS.md for the calibrated runs).

use bumblebee::sim::figures::{fig1, fig8};
use bumblebee::sim::{geomean, run_design, run_reference, Design, RunConfig};
use bumblebee::trace::SpecProfile;

fn mix() -> Vec<SpecProfile> {
    // One workload per locality archetype plus a big-footprint streamer.
    vec![
        SpecProfile::mcf(),
        SpecProfile::wrf(),
        SpecProfile::named("bwaves"),
        SpecProfile::named("roms"),
    ]
}

fn geomean_speedup(design: Design, cfg: &RunConfig, profiles: &[SpecProfile]) -> f64 {
    let mut v = Vec::new();
    for p in profiles {
        let base = run_reference(cfg, p).expect("baseline");
        let r = run_design(design, cfg, p).expect("run");
        v.push(r.normalized_ipc(&base));
    }
    geomean(&v)
}

#[test]
fn bumblebee_beats_every_baseline_on_the_mix() {
    // 60k accesses: enough for the streaming workloads' geomean to settle —
    // at 20k the Banshee-vs-Bumblebee ordering is still seed noise.
    let mut cfg = RunConfig::tiny();
    cfg.accesses = 60_000;
    let profiles = mix();
    let bee = geomean_speedup(Design::Bumblebee, &cfg, &profiles);
    assert!(bee > 1.0, "Bumblebee speedup {bee:.2}");
    for d in [Design::Banshee, Design::Alloy, Design::Unison, Design::Chameleon, Design::Hybrid2] {
        let other = geomean_speedup(d, &cfg, &profiles);
        assert!(
            bee >= other,
            "Bumblebee {bee:.2} must beat {} {other:.2}",
            d.label()
        );
    }
}

#[test]
fn adjustable_ratio_beats_single_modes() {
    // Fig. 7's core claim: the adaptive design beats C-Only and M-Only.
    let cfg = RunConfig::tiny();
    let profiles = mix();
    let bee = geomean_speedup(Design::Bumblebee, &cfg, &profiles);
    let c_only = geomean_speedup(Design::Ablation("C-Only"), &cfg, &profiles);
    let m_only = geomean_speedup(Design::Ablation("M-Only"), &cfg, &profiles);
    assert!(bee >= c_only * 0.98, "adaptive {bee:.2} vs C-Only {c_only:.2}");
    assert!(bee >= m_only * 0.98, "adaptive {bee:.2} vs M-Only {m_only:.2}");
}

#[test]
fn metadata_is_orders_of_magnitude_smaller_than_block_tag_designs() {
    // §IV-B: Bumblebee's metadata is 1–2 orders below tag-based designs
    // at the same geometry, and fits the SRAM budget.
    let cfg = RunConfig::tiny();
    let bee = Design::Bumblebee.build(cfg.geometry, cfg.sram_budget);
    let alloy = Design::Alloy.build(cfg.geometry, cfg.sram_budget);
    use bumblebee::types::HybridMemoryController;
    assert!(
        bee.metadata_bytes() * 10 <= alloy.metadata_bytes(),
        "bumblebee {} vs alloy {}",
        bee.metadata_bytes(),
        alloy.metadata_bytes()
    );
    assert!(bee.metadata_bytes() <= cfg.sram_budget);
}

#[test]
fn overfetch_stays_moderate_for_bumblebee() {
    // §IV-B: 13.3% at paper scale. At test scale (1/256 capacity)
    // evictions come orders of magnitude sooner, so fetched lines get far
    // less time to accumulate reuse; we bound the ratio loosely and record
    // the calibrated value in EXPERIMENTS.md.
    let cfg = RunConfig::tiny();
    let mut total = 0.0;
    let mut n = 0;
    for p in mix() {
        let r = run_design(Design::Bumblebee, &cfg, &p).expect("run");
        if let Some(of) = r.overfetch {
            total += of;
            n += 1;
        }
    }
    let avg = total / f64::from(n);
    assert!(avg < 0.55, "average over-fetch {avg:.2}");
}

#[test]
fn fig1_motivation_shape_holds() {
    // wrf (weak spatial): hot share collapses with line size.
    // mcf (strong/strong): stays hot even at 64 KB lines.
    let mut cfg = RunConfig::tiny();
    cfg.accesses = 120_000;
    let wrf = fig1::run_workload(&cfg, &SpecProfile::wrf());
    let mcf = fig1::run_workload(&cfg, &SpecProfile::mcf());
    let hot = |s: &fig1::BucketShares| 1.0 - s.0[0];
    assert!(hot(&wrf[0].1) > hot(&wrf[5].1), "wrf degrades with line size");
    assert!(hot(&mcf[5].1) > hot(&wrf[5].1), "mcf stays hotter at 64KB");
}

#[test]
fn fig8_data_is_internally_consistent() {
    let cfg = RunConfig::tiny();
    let profiles = [SpecProfile::mcf(), SpecProfile::named("bwaves")];
    let data = fig8::run(&cfg, &profiles).expect("comparison");
    // All-group IPC cell equals the geomean over per-workload ratios.
    let bee = Design::fig8().iter().position(|d| *d == Design::Bumblebee).unwrap();
    let cell = data.cell(bee, "All", fig8::Panel::Ipc);
    let manual: Vec<f64> = (0..profiles.len())
        .map(|w| data.reports[bee][w].normalized_ipc(&data.baselines[w]))
        .collect();
    assert!((cell - geomean(&manual)).abs() < 1e-9);
    // Traffic cells are non-negative and finite everywhere.
    for (i, _) in Design::fig8().iter().enumerate() {
        for g in fig8::GROUPS {
            for p in fig8::Panel::all() {
                let v = data.cell(i, g, p);
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
}

#[test]
fn high_footprint_workloads_fault_on_cache_designs_not_pom() {
    // The OS-capacity story behind the High-MPKI group: roms exceeds
    // off-chip DRAM, so cache-only designs page-fault while POM/hybrid
    // designs serve from the enlarged flat space.
    // 60k accesses so the streamer keeps touching fresh pages well past the
    // warmup window — at 20k every fault can land pre-measurement.
    let mut cfg = RunConfig::tiny();
    cfg.accesses = 60_000;
    let roms = SpecProfile::named("roms");
    let base = run_design(Design::NoHbm, &cfg, &roms).expect("run");
    let bee = run_design(Design::Bumblebee, &cfg, &roms).expect("run");
    assert!(base.stall_cycles > 0, "no-HBM must fault on roms");
    assert!(
        base.page_faults.unwrap_or(0) > 0 && bee.page_faults == Some(0),
        "faults: no-HBM {:?} vs Bumblebee {:?}",
        base.page_faults,
        bee.page_faults
    );
    assert!(
        bee.stall_cycles < base.stall_cycles / 10,
        "Bumblebee absorbs roms in the flat space: {} vs {}",
        bee.stall_cycles,
        base.stall_cycles
    );
}
