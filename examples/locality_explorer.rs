//! Locality explorer: watch Bumblebee adapt its cHBM:mHBM ratio to the
//! workload's locality class — the paper's central claim.
//!
//! Runs the three Fig. 1 archetypes (mcf: strong/strong, wrf: weak
//! spatial/strong temporal, xz: strong spatial/weak temporal) plus a
//! phase-change stream, printing the controller's chosen mode mix.
//!
//! ```text
//! cargo run --release --example locality_explorer
//! ```

use bumblebee::core::{BumblebeeConfig, BumblebeeController};
use bumblebee::sim::{RunConfig, SimParams, System};
use bumblebee::trace::{SpecProfile, Workload};
use bumblebee::types::HybridMemoryController;

fn run_profile(cfg: &RunConfig, profile: &SpecProfile) {
    let controller = BumblebeeController::new(
        cfg.geometry,
        BumblebeeConfig { sram_budget: cfg.sram_budget, ..BumblebeeConfig::paper() },
    );
    let mut system = System::new(controller, cfg.geometry(), SimParams::default(), true);
    let mut workload = cfg.workload(profile);
    for _ in 0..cfg.accesses {
        system.step(workload.next_access());
    }
    let c = system.controller();
    println!(
        "{:10} ({:35})  cHBM {:4.1}%  mHBM {:4.1}%  hit {:4.1}%  switches {:>6}+{:<6}",
        profile.name,
        profile.class.to_string(),
        c.chbm_fraction() * 100.0,
        c.mhbm_fraction() * 100.0,
        c.stats().hbm_hit_rate() * 100.0,
        c.stats().switch_to_mhbm,
        c.stats().switch_to_chbm,
    );
}

fn phase_change(cfg: &RunConfig) {
    // Half the run behaves like wrf (weak spatial), then like xz (strong
    // spatial): the ratio must move at runtime, without any reconfiguration.
    let controller = BumblebeeController::new(
        cfg.geometry,
        BumblebeeConfig { sram_budget: cfg.sram_budget, ..BumblebeeConfig::paper() },
    );
    let mut system = System::new(controller, cfg.geometry(), SimParams::default(), true);
    let mut wrf = Workload::new(SpecProfile::wrf().spec(cfg.scale), cfg.geometry().flat_bytes(), 7);
    let mut xz = Workload::new(SpecProfile::xz().spec(cfg.scale), cfg.geometry().flat_bytes(), 7);
    for _ in 0..cfg.accesses / 2 {
        system.step(wrf.next_access());
    }
    let mid = system.controller().chbm_fraction();
    for _ in 0..cfg.accesses / 2 {
        system.step(xz.next_access());
    }
    let end = system.controller().chbm_fraction();
    println!("\nphase change wrf→xz: cHBM fraction {:4.1}% → {:4.1}% (adapted at runtime)", mid * 100.0, end * 100.0);
}

fn main() {
    let cfg = RunConfig::at_scale(64, 120_000);
    println!("How Bumblebee splits its HBM between cache (cHBM) and memory (mHBM):\n");
    for p in [SpecProfile::mcf(), SpecProfile::wrf(), SpecProfile::xz()] {
        run_profile(&cfg, &p);
    }
    phase_change(&cfg);
}
