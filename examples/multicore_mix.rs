//! Multi-programmed mixes: the shared-LLC miss streams of several cores
//! hitting one hybrid memory system (the paper's platform is a multicore;
//! this example shows how contention shifts the design comparison).
//!
//! ```text
//! cargo run --release --example multicore_mix
//! ```

use bumblebee::sim::{Design, RunConfig, SimParams, System};
use bumblebee::trace::{MixWorkload, SpecProfile};
use bumblebee::types::HybridMemoryController;

fn run_mix(cfg: &RunConfig, design: Design, profiles: &[SpecProfile]) -> (f64, f64) {
    let controller = design.build(cfg.geometry, cfg.sram_budget);
    let mut system = System::new(controller, cfg.geometry(), SimParams::default(), design.uses_hbm());
    let mut mix = MixWorkload::new(profiles, cfg.scale, cfg.geometry().flat_bytes(), cfg.seed);
    for _ in 0..cfg.accesses {
        system.step(mix.next_access());
    }
    let ipc = system.counters().instructions as f64 / system.now().max(1) as f64;
    (ipc, system.controller().stats().hbm_hit_rate())
}

fn main() {
    let cfg = RunConfig::at_scale(64, 150_000);
    let mixes: [(&str, Vec<SpecProfile>); 3] = [
        (
            "2 latency-bound (mcf + xalancbmk)",
            vec![SpecProfile::mcf(), SpecProfile::named("xalancbmk")],
        ),
        (
            "2 streaming (lbm + bwaves)",
            vec![SpecProfile::named("lbm"), SpecProfile::named("bwaves")],
        ),
        (
            "4-core mixed (mcf + wrf + lbm + xz)",
            vec![
                SpecProfile::mcf(),
                SpecProfile::wrf(),
                SpecProfile::named("lbm"),
                SpecProfile::xz(),
            ],
        ),
    ];

    for (name, profiles) in mixes {
        println!("mix: {name}");
        let (base_ipc, _) = run_mix(&cfg, Design::NoHbm, &profiles);
        for design in [Design::Banshee, Design::Hybrid2, Design::Bumblebee] {
            let (ipc, hit) = run_mix(&cfg, design, &profiles);
            println!(
                "  {:10}  IPC {:.2}x  HBM hit {:4.1}%",
                design.label(),
                ipc / base_ipc,
                hit * 100.0
            );
        }
        println!();
    }
    println!("note: heavy multiprogrammed interleaving defeats the hot table's");
    println!("      short reuse horizon, so page-granularity migration pays off");
    println!("      less than block-granularity caching there — a trade-off the");
    println!("      paper's single-program evaluation does not exercise.");
}
