use bumblebee::sim::{Design, RunConfig, SimParams, System};
use bumblebee::trace::{MixWorkload, SpecProfile};
use bumblebee::types::HybridMemoryController;
fn main() {
    let cfg = RunConfig::at_scale(64, 150_000);
    let profiles = vec![SpecProfile::mcf(), SpecProfile::wrf(), SpecProfile::named("lbm"), SpecProfile::xz()];
    let controller = Design::Bumblebee.build(cfg.geometry, cfg.sram_budget);
    let mut system = System::new(controller, cfg.geometry(), SimParams::default(), true);
    let mut mix = MixWorkload::new(&profiles, cfg.scale, cfg.geometry().flat_bytes(), cfg.seed);
    for _ in 0..150_000 { system.step(mix.next_access()); }
    let c = system.controller();
    let s = c.stats();
    println!("cycles {} insts {} stall {} | hit {:.3} migr {} evic {} sw {}+{} zomb {} rej {} flush {} faults {:?} alloc {}/{} fills {}",
        system.now(), system.counters().instructions, system.counters().stall_cycles,
        s.hbm_hit_rate(), s.page_migrations, s.evictions, s.switch_to_mhbm, s.switch_to_chbm,
        s.zombie_evictions, s.threshold_rejections, s.pressure_flushes, c.page_faults(),
        s.alloc_in_hbm, s.allocations, s.block_fills);
}
