//! Design-space exploration (the paper's Fig. 6 methodology): sweep block
//! and page sizes, print normalized IPC and metadata cost per point.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use bumblebee::core::{BumblebeeConfig, MetadataBreakdown};
use bumblebee::sim::figures::fig6;
use bumblebee::sim::RunConfig;
use bumblebee::trace::SpecProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RunConfig::at_scale(64, 60_000);
    // A representative mix: one workload per locality archetype.
    let profiles =
        [SpecProfile::mcf(), SpecProfile::wrf(), SpecProfile::xz(), SpecProfile::named("lbm")];

    println!("block-page sweep on {} workloads:\n", profiles.len());
    let points = fig6::run(&cfg, &profiles)?;
    println!("{:>14}  {:>8}  {:>12}", "block-page", "IPC", "metadata KB");
    for p in &points {
        let g = cfg
            .clone()
            .with_block_page(p.block_kb << 10, p.page_kb << 10)?
            .geometry;
        let meta = MetadataBreakdown::compute(&g, &BumblebeeConfig::default());
        println!(
            "{:>10}-{:<3}  {:8.2}  {:12.1}",
            format!("{}KB", p.block_kb),
            format!("{}KB", p.page_kb),
            p.speedup,
            meta.total() as f64 / 1024.0
        );
    }
    if let Some(best) = fig6::best(&points) {
        println!(
            "\nbest point: {}KB blocks / {}KB pages (paper finds 2KB/64KB at full scale)",
            best.block_kb, best.page_kb
        );
    }
    Ok(())
}
