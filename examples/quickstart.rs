//! Quickstart: run Bumblebee on one workload and print the headline
//! numbers against the no-HBM baseline and Hybrid2.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bumblebee::sim::{run_design, run_reference, Design, RunConfig};
use bumblebee::trace::SpecProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1/64 of the paper's Table I capacities: fast, same ratios.
    let cfg = RunConfig::at_scale(64, 100_000);
    let mcf = SpecProfile::mcf();

    println!("workload: {} ({}; paper MPKI {:.1})", mcf.name, mcf.class, mcf.mpki);
    println!(
        "geometry: {} MB HBM / {} MB off-chip DRAM, {} KB pages, {} KB blocks\n",
        cfg.geometry().hbm_bytes() >> 20,
        cfg.geometry().dram_bytes() >> 20,
        cfg.geometry().page_bytes() >> 10,
        cfg.geometry().block_bytes() >> 10,
    );

    let baseline = run_reference(&cfg, &mcf)?;
    for design in [Design::Hybrid2, Design::Bumblebee] {
        let r = run_design(design, &cfg, &mcf)?;
        println!(
            "{:10}  IPC {:.2}x  HBM hit rate {:4.1}%  HBM {:6.1} MB  DRAM {:6.1} MB  metadata {:5.1} KB",
            r.design,
            r.normalized_ipc(&baseline),
            r.stats.hbm_hit_rate() * 100.0,
            r.hbm_bytes as f64 / (1 << 20) as f64,
            r.dram_bytes as f64 / (1 << 20) as f64,
            r.metadata_bytes as f64 / 1024.0,
        );
    }
    Ok(())
}
