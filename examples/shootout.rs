//! Shootout: every design of the paper's Fig. 8 head to head on a chosen
//! workload, with the full metric set.
//!
//! ```text
//! cargo run --release --example shootout [workload]
//! ```

use bumblebee::sim::{run_design, run_reference, Design, RunConfig};
use bumblebee::trace::SpecProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bwaves".to_string());
    let profile = SpecProfile::named(&name);
    let cfg = RunConfig::at_scale(64, 100_000);

    println!(
        "{} — MPKI {:.1}, footprint {:.1} GB (paper scale), {}\n",
        profile.name,
        profile.mpki,
        profile.footprint_mb as f64 / 1024.0,
        profile.class
    );
    let baseline = run_reference(&cfg, &profile)?;
    println!(
        "{:10}  {:>6}  {:>9}  {:>10}  {:>10}  {:>8}  {:>9}",
        "design", "IPC", "HBM hit%", "HBM MB", "DRAM MB", "energy", "overfetch"
    );
    for design in Design::fig8() {
        let r = run_design(design, &cfg, &profile)?;
        println!(
            "{:10}  {:6.2}  {:9.1}  {:10.1}  {:10.1}  {:8.2}  {:>9}",
            r.design,
            r.normalized_ipc(&baseline),
            r.stats.hbm_hit_rate() * 100.0,
            r.hbm_bytes as f64 / (1 << 20) as f64,
            r.dram_bytes as f64 / (1 << 20) as f64,
            r.normalized_energy(&baseline),
            r.overfetch.map_or("-".to_string(), |v| format!("{:.1}%", v * 100.0)),
        );
    }
    println!("\n(IPC and energy normalized to a no-HBM system; lower energy is better)");
    Ok(())
}
